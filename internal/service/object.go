// Package service is the declarative control plane over the DVDC runtime:
// checkpoint and restore requests are versioned objects with explicit status
// phases, submitted through admission control (per-tenant quotas, priority
// ordering) into a store, and driven to completion by a reconciler loop that
// level-triggers each object toward its desired state by calling the
// runtime's round and recovery machinery through a narrow Executor seam.
//
// The shape follows kubevirt CDI's DataVolume idiom: a small spec the tenant
// writes once, a status only the controller writes (phase, observed
// generation, conditions, retry counts), and a reconciler that owns every
// transition. Tenants — the CLI, the soak harness, remote callers over the
// HTTP API — never invoke the coordinator directly; they submit objects and
// watch status, so every caller exercises the same scheduling path.
//
// The package deliberately does not import the runtime: the Executor
// interface (and the CasualtyError it classifies) is all it knows about the
// machinery underneath, which keeps the policy layer testable against fakes
// and free of import cycles.
package service

import (
	"fmt"
	"time"
)

// APIVersion names the request-object schema served by the HTTP API. Bump it
// when a field changes meaning; additive changes keep the version.
const APIVersion = "dvdc/v1"

// Kind discriminates the two request objects.
type Kind string

const (
	// KindCheckpoint asks for one two-phase checkpoint round (optionally
	// preceded by workload steps).
	KindCheckpoint Kind = "Checkpoint"
	// KindRestore asks for the recovery protocol over a set of failed nodes.
	KindRestore Kind = "Restore"
)

// Phase is a request's lifecycle position. Transitions are strictly
//
//	Pending -> Scheduled -> InProgress -> Succeeded | Failed
//
// except that a failed attempt with retry budget left moves
// InProgress -> Scheduled (with backoff) instead of a terminal phase.
type Phase string

const (
	PhasePending    Phase = "Pending"    // admitted, not yet queued by the reconciler
	PhaseScheduled  Phase = "Scheduled"  // queued; waiting for its turn (or backoff)
	PhaseInProgress Phase = "InProgress" // the reconciler is executing it now
	PhaseSucceeded  Phase = "Succeeded"  // converged: the cluster reached the desired state
	PhaseFailed     Phase = "Failed"     // gave up: retry budget exhausted or unrecoverable
)

// Terminal reports whether the phase is final.
func (p Phase) Terminal() bool { return p == PhaseSucceeded || p == PhaseFailed }

// Spec is the tenant-written half of a request. Checkpoint requests use
// Steps; restore requests use Nodes. Priority orders the queue (higher runs
// first; ties run in submission order).
type Spec struct {
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority,omitempty"`
	Steps    uint64 `json:"steps,omitempty"` // checkpoint: workload steps before the round
	Nodes    []int  `json:"nodes,omitempty"` // restore: failed nodes to recover
}

// Condition is one observed fact about a request's progress, appended or
// updated in place by the reconciler (one condition per Type).
type Condition struct {
	Type    string    `json:"type"`
	Status  bool      `json:"status"`
	Reason  string    `json:"reason,omitempty"`
	Message string    `json:"message,omitempty"`
	At      time.Time `json:"at"`
}

// Condition types the reconciler maintains.
const (
	CondAdmitted  = "Admitted"  // passed admission control
	CondScheduled = "Scheduled" // entered the priority queue
	CondExecuting = "Executing" // an attempt is (or was) in flight
	CondRetrying  = "Retrying"  // last attempt failed; backing off for another
	CondRecovered = "Recovered" // mid-round casualties were recovered inline
	CondResumed   = "Resumed"   // re-queued after a controller restart found it in flight
	CondComplete  = "Complete"  // reached a terminal phase
)

// Status is the controller-written half of a request.
type Status struct {
	Phase Phase `json:"phase"`
	// ObservedGeneration is the Generation the reconciler last acted on; a
	// terminal request always shows ObservedGeneration == Generation.
	ObservedGeneration int64 `json:"observed_generation"`
	// Retries counts execution attempts beyond the first.
	Retries int `json:"retries"`
	// Epoch is the cluster epoch after the request converged (checkpoints:
	// the committed epoch; restores: the epoch the recovery certified).
	Epoch uint64 `json:"epoch,omitempty"`
	// Casualties are nodes lost mid-round (a commit-phase death) while this
	// request was executing; they were recovered inline when the request
	// still Succeeded, and are the reason when it Failed.
	Casualties []int       `json:"casualties,omitempty"`
	Message    string      `json:"message,omitempty"`
	Conditions []Condition `json:"conditions,omitempty"`
	// TraceIDs are the root trace ids (hex, one per reconcile attempt, oldest
	// first, newest-8 kept) of the rounds the reconciler ran for this request.
	// Journaled like any status write, so the request→trace link survives a
	// controller restart; `dvdcctl get -o wide` and `dvdcctl trace` read it.
	TraceIDs []string `json:"trace_ids,omitempty"`
}

// maxTraceIDs bounds how many attempt traces a status carries so a
// retry-heavy request cannot grow its journal record without bound.
const maxTraceIDs = 8

// addTraceID appends one attempt's root trace id, deduping consecutive
// repeats and keeping only the newest maxTraceIDs.
func (s *Status) addTraceID(id string) {
	if id == "" {
		return
	}
	if n := len(s.TraceIDs); n > 0 && s.TraceIDs[n-1] == id {
		return
	}
	s.TraceIDs = append(s.TraceIDs, id)
	if len(s.TraceIDs) > maxTraceIDs {
		s.TraceIDs = append([]string(nil), s.TraceIDs[len(s.TraceIDs)-maxTraceIDs:]...)
	}
}

// Request is one checkpoint or restore object. Spec is written once at
// submission; Status is written only by the reconciler. Generation bumps on
// every spec write (submission counts), mirroring the CDI/Kubernetes idiom
// so ObservedGeneration can prove the status refers to the current spec.
type Request struct {
	APIVersion string    `json:"api_version"`
	Kind       Kind      `json:"kind"`
	ID         string    `json:"id"`
	Generation int64     `json:"generation"`
	Created    time.Time `json:"created"`
	Spec       Spec      `json:"spec"`
	Status     Status    `json:"status"`
}

// Terminal reports whether the request has reached a final phase.
func (r *Request) Terminal() bool { return r.Status.Phase.Terminal() }

// setCondition updates the condition of the given type in place (appending
// if absent), stamping it with now.
func (s *Status) setCondition(now time.Time, condType string, ok bool, reason, message string) {
	for i := range s.Conditions {
		if s.Conditions[i].Type == condType {
			s.Conditions[i] = Condition{Type: condType, Status: ok, Reason: reason, Message: message, At: now}
			return
		}
	}
	s.Conditions = append(s.Conditions, Condition{Type: condType, Status: ok, Reason: reason, Message: message, At: now})
}

// Validate rejects malformed specs at admission time.
func (k Kind) Validate(spec Spec) error {
	switch k {
	case KindCheckpoint:
		if len(spec.Nodes) != 0 {
			return fmt.Errorf("service: checkpoint spec names nodes %v (restore-only field)", spec.Nodes)
		}
	case KindRestore:
		if len(spec.Nodes) == 0 {
			return fmt.Errorf("service: restore spec names no nodes")
		}
		seen := map[int]bool{}
		for _, n := range spec.Nodes {
			if n < 0 {
				return fmt.Errorf("service: restore spec names negative node %d", n)
			}
			if seen[n] {
				return fmt.Errorf("service: restore spec names node %d twice", n)
			}
			seen[n] = true
		}
		if spec.Steps != 0 {
			return fmt.Errorf("service: restore spec sets steps (checkpoint-only field)")
		}
	default:
		return fmt.Errorf("service: unknown kind %q", k)
	}
	if spec.Tenant == "" {
		return fmt.Errorf("service: spec names no tenant")
	}
	return nil
}
