package service

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Store is the versioned request-object store. Every write bumps a
// monotonically increasing revision; watchers block on Changed until the
// revision moves past the one they last saw, then re-read — a level-triggered
// watch with no per-watcher queue to overflow. All returned objects are deep
// copies: callers can never mutate stored state except through Update.
type Store struct {
	mu     sync.Mutex
	rev    int64
	nextID int64
	byID   map[string]*Request
	order  []string // submission order
	change chan struct{}
	now    func() time.Time
}

// NewStore builds an empty store.
func NewStore() *Store {
	return &Store{
		byID:   map[string]*Request{},
		change: make(chan struct{}),
		now:    time.Now,
	}
}

// setClock substitutes the timestamp source (tests).
func (s *Store) setClock(now func() time.Time) {
	s.mu.Lock()
	s.now = now
	s.mu.Unlock()
}

// bump advances the revision and wakes every watcher. Caller holds s.mu.
func (s *Store) bump() int64 {
	s.rev++
	close(s.change)
	s.change = make(chan struct{})
	return s.rev
}

// Rev returns the store's current revision.
func (s *Store) Rev() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rev
}

// Changed returns a channel closed at the next write. Use with Rev:
// re-check state after the channel fires, not instead of checking.
func (s *Store) Changed() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.change
}

// Wait blocks until the store revision exceeds rev or the deadline passes,
// and returns the current revision either way.
func (s *Store) Wait(rev int64, deadline time.Time) int64 {
	for {
		s.mu.Lock()
		cur, ch := s.rev, s.change
		s.mu.Unlock()
		if cur > rev {
			return cur
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return cur
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
		case <-t.C:
		}
		t.Stop()
	}
}

// idPrefix maps a kind to its id namespace.
func idPrefix(kind Kind) string {
	if kind == KindRestore {
		return "rr"
	}
	return "cr"
}

// Create inserts a new request in phase Pending at generation 1 and returns
// a copy. The spec must already have passed validation and admission.
func (s *Store) Create(kind Kind, spec Spec) *Request {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	now := s.now()
	req := &Request{
		APIVersion: APIVersion,
		Kind:       kind,
		ID:         fmt.Sprintf("%s-%d", idPrefix(kind), s.nextID),
		Generation: 1,
		Created:    now,
		Spec:       spec,
		Status:     Status{Phase: PhasePending},
	}
	req.Status.setCondition(now, CondAdmitted, true, "Admitted", "passed admission control")
	s.byID[req.ID] = req
	s.order = append(s.order, req.ID)
	s.bump()
	return req.clone()
}

// Get returns a copy of the request, or false.
func (s *Store) Get(id string) (*Request, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	req, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	return req.clone(), true
}

// List returns copies of every request in submission order; a non-empty
// tenant filters to that tenant's requests.
func (s *Store) List(tenant string) []*Request {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Request, 0, len(s.order))
	for _, id := range s.order {
		if req := s.byID[id]; tenant == "" || req.Spec.Tenant == tenant {
			out = append(out, req.clone())
		}
	}
	return out
}

// UpdateStatus applies mutate to the request's status under the store lock,
// stamps ObservedGeneration handling to the caller, bumps the revision, and
// returns a copy. Unknown ids return an error.
func (s *Store) UpdateStatus(id string, mutate func(now time.Time, req *Request)) (*Request, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	req, ok := s.byID[id]
	if !ok {
		return nil, fmt.Errorf("service: no request %q", id)
	}
	mutate(s.now(), req)
	s.bump()
	return req.clone(), nil
}

// ActiveByTenant counts non-terminal requests per tenant (admission input).
func (s *Store) ActiveByTenant() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string]int{}
	for _, req := range s.byID {
		if !req.Terminal() {
			out[req.Spec.Tenant]++
		}
	}
	return out
}

// PhaseCounts tallies requests by phase (exported as the
// dvdc_service_requests gauge family).
func (s *Store) PhaseCounts() map[Phase]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[Phase]int{}
	for _, req := range s.byID {
		out[req.Status.Phase]++
	}
	return out
}

// Tenants lists every tenant that ever submitted, sorted.
func (s *Store) Tenants() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := map[string]bool{}
	for _, req := range s.byID {
		seen[req.Spec.Tenant] = true
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// clone deep-copies a request.
func (r *Request) clone() *Request {
	out := *r
	out.Spec.Nodes = append([]int(nil), r.Spec.Nodes...)
	out.Status.Casualties = append([]int(nil), r.Status.Casualties...)
	out.Status.Conditions = append([]Condition(nil), r.Status.Conditions...)
	return &out
}
