package service

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"dvdc/internal/obs"
	"dvdc/internal/service/journal"
)

// ErrDurability wraps every failure of the durable backing: a journal append
// or compaction that did not land, or a write against a closed store. The
// HTTP layer maps it to a 500 (the request was not persisted), and the store
// fail-stops: once a write is lost, accepting more would let the in-memory
// state drift arbitrarily far from what a restart will replay.
var ErrDurability = errors.New("service: durable store failure")

// DefaultCompactBytes is the journal size past which an append triggers a
// snapshot+truncate compaction.
const DefaultCompactBytes = 1 << 20

// Store is the versioned request-object store. Every write bumps a
// monotonically increasing revision; watchers block on Changed until the
// revision moves past the one they last saw, then re-read — a level-triggered
// watch with no per-watcher queue to overflow. All returned objects are deep
// copies: callers can never mutate stored state except through Update.
//
// A store opened with OpenStore additionally writes every mutation through an
// append-only journal before returning, so a restarted controller replays to
// exactly the revision, objects, and admission counts the old one last
// acknowledged.
type Store struct {
	mu     sync.Mutex
	rev    int64
	nextID int64
	byID   map[string]*Request
	order  []string // submission order
	change chan struct{}
	now    func() time.Time

	// Durable backing; all nil/zero for the memory-only store.
	jw           *journal.Writer
	jerr         error // sticky: first journal failure poisons all later writes
	compactBytes int64
	reg          *obs.Registry
}

// NewStore builds an empty in-memory store.
func NewStore() *Store {
	return &Store{
		byID:   map[string]*Request{},
		change: make(chan struct{}),
		now:    time.Now,
	}
}

// DurableOptions tune OpenStore.
type DurableOptions struct {
	// CompactBytes is the journal size that triggers compaction; 0 picks
	// DefaultCompactBytes, negative disables automatic compaction.
	CompactBytes int64
	// SyncBatch is the number of appends between fsyncs (<=1 syncs every
	// append — the durable default).
	SyncBatch int
	// Registry receives the dvdc_service_journal_* metrics (nil = unmetered).
	Registry *obs.Registry
}

// ReplayInfo summarizes what OpenStore recovered.
type ReplayInfo struct {
	Records      int           // intact journal records replayed
	Requests     int           // request objects in the recovered store
	DroppedBytes int64         // torn tail truncated from the journal
	Duration     time.Duration // wall time of the scan + replay
}

// OpenStore opens (creating if needed) the journal-backed store rooted at
// dir, replaying the log into memory. A torn tail — a crash mid-append — is
// truncated silently; a record that passes its CRC but fails semantic
// validation is a hard error, because loading it would be silent corruption.
func OpenStore(dir string, opts DurableOptions) (*Store, ReplayInfo, error) {
	var info ReplayInfo
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, info, fmt.Errorf("service: state dir: %w", err)
	}
	path := filepath.Join(dir, journalFileName)
	reg := opts.Registry
	t0 := time.Now()
	jw, payloads, rinfo, err := journal.Recover(path, journal.Options{
		SyncBatch: opts.SyncBatch,
		OnFsync: func(d time.Duration) {
			reg.Counter("dvdc_service_journal_fsyncs_total").Inc()
			reg.Histogram("dvdc_service_journal_fsync_seconds", obs.LatencyBuckets()).Observe(d.Seconds())
		},
	})
	if err != nil {
		return nil, info, fmt.Errorf("service: open journal: %w", err)
	}
	img, err := replayRecords(payloads)
	if err != nil {
		jw.Close()
		return nil, info, fmt.Errorf("service: replay %s: %w", path, err)
	}
	s := &Store{
		rev:    img.rev,
		nextID: img.nextID,
		byID:   img.byID,
		order:  img.order,
		change: make(chan struct{}),
		now:    time.Now,
		jw:     jw,
		reg:    reg,
	}
	s.compactBytes = opts.CompactBytes
	if s.compactBytes == 0 {
		s.compactBytes = DefaultCompactBytes
	}
	info = ReplayInfo{
		Records:      len(payloads),
		Requests:     len(img.order),
		DroppedBytes: rinfo.DroppedBytes,
		Duration:     time.Since(t0),
	}
	reg.Histogram("dvdc_service_journal_replay_seconds", obs.LatencyBuckets()).
		Observe(info.Duration.Seconds())
	reg.GaugeFunc("dvdc_service_journal_bytes", func() float64 { return float64(jw.Size()) })
	return s, info, nil
}

// setClock substitutes the timestamp source (tests).
func (s *Store) setClock(now func() time.Time) {
	s.mu.Lock()
	s.now = now
	s.mu.Unlock()
}

// bump advances the revision and wakes every watcher. Caller holds s.mu.
func (s *Store) bump() int64 {
	s.rev++
	close(s.change)
	s.change = make(chan struct{})
	return s.rev
}

// Rev returns the store's current revision.
func (s *Store) Rev() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rev
}

// Changed returns a channel closed at the next write. Use with Rev:
// re-check state after the channel fires, not instead of checking.
func (s *Store) Changed() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.change
}

// Wait blocks until the store revision exceeds rev or the deadline passes,
// and returns the current revision either way.
func (s *Store) Wait(rev int64, deadline time.Time) int64 {
	for {
		s.mu.Lock()
		cur, ch := s.rev, s.change
		s.mu.Unlock()
		if cur > rev {
			return cur
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return cur
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
		case <-t.C:
		}
		t.Stop()
	}
}

// idPrefix maps a kind to its id namespace.
func idPrefix(kind Kind) string {
	if kind == KindRestore {
		return "rr"
	}
	return "cr"
}

// Create inserts a new request in phase Pending at generation 1 and returns
// a copy. The spec must already have passed validation and admission. On a
// journal-backed store the create is durable before Create returns; a journal
// failure poisons the store (ErrDurability) rather than diverging from disk.
func (s *Store) Create(kind Kind, spec Spec) (*Request, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jerr != nil {
		return nil, s.jerr
	}
	s.nextID++
	now := s.now()
	req := &Request{
		APIVersion: APIVersion,
		Kind:       kind,
		ID:         fmt.Sprintf("%s-%d", idPrefix(kind), s.nextID),
		Generation: 1,
		Created:    now,
		Spec:       spec,
		Status:     Status{Phase: PhasePending},
	}
	req.Status.setCondition(now, CondAdmitted, true, "Admitted", "passed admission control")
	s.byID[req.ID] = req
	s.order = append(s.order, req.ID)
	s.bump()
	if err := s.appendLocked(journalRecord{Op: opCreate, Rev: s.rev, NextID: s.nextID, Req: req}); err != nil {
		return nil, err
	}
	return req.clone(), nil
}

// Get returns a copy of the request, or false.
func (s *Store) Get(id string) (*Request, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	req, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	return req.clone(), true
}

// List returns copies of every request in submission order; a non-empty
// tenant filters to that tenant's requests.
func (s *Store) List(tenant string) []*Request {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Request, 0, len(s.order))
	for _, id := range s.order {
		if req := s.byID[id]; tenant == "" || req.Spec.Tenant == tenant {
			out = append(out, req.clone())
		}
	}
	return out
}

// UpdateStatus applies mutate to the request's status under the store lock,
// stamps ObservedGeneration handling to the caller, bumps the revision, and
// returns a copy. Unknown ids return an error.
func (s *Store) UpdateStatus(id string, mutate func(now time.Time, req *Request)) (*Request, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jerr != nil {
		return nil, s.jerr
	}
	req, ok := s.byID[id]
	if !ok {
		return nil, fmt.Errorf("service: no request %q", id)
	}
	mutate(s.now(), req)
	s.bump()
	if err := s.appendLocked(journalRecord{Op: opStatus, Rev: s.rev, Req: req}); err != nil {
		return nil, err
	}
	return req.clone(), nil
}

// appendLocked writes one record through the journal (no-op for the memory
// store) and compacts past the size threshold. Caller holds s.mu — which is
// what makes compaction atomic with respect to writers: the snapshot, the
// rewrite, and every append happen under the same lock, so a compacted log
// can never miss a record that raced it.
func (s *Store) appendLocked(rec journalRecord) error {
	if s.jw == nil {
		return nil
	}
	b, err := encodeRecord(rec)
	if err == nil {
		err = s.jw.Append(b)
	}
	if err != nil {
		s.jerr = fmt.Errorf("%w: append: %v", ErrDurability, err)
		return s.jerr
	}
	s.reg.Counter("dvdc_service_journal_appends_total").Inc()
	if s.compactBytes > 0 && s.jw.Size() > s.compactBytes {
		return s.compactLocked()
	}
	return nil
}

// compactLocked rewrites the journal as one snapshot record. Caller holds s.mu.
func (s *Store) compactLocked() error {
	if s.jw == nil {
		return nil
	}
	snap := &journalSnapshot{Rev: s.rev, NextID: s.nextID}
	for _, id := range s.order {
		snap.Requests = append(snap.Requests, s.byID[id])
	}
	b, err := encodeRecord(journalRecord{Op: opSnapshot, Rev: s.rev, Snapshot: snap})
	if err == nil {
		err = s.jw.Rewrite(b)
	}
	if err != nil {
		s.jerr = fmt.Errorf("%w: compact: %v", ErrDurability, err)
		return s.jerr
	}
	s.reg.Counter("dvdc_service_journal_compactions_total").Inc()
	return nil
}

// Compact forces a snapshot+truncate rewrite of the journal (no-op for the
// memory store).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jerr != nil {
		return s.jerr
	}
	return s.compactLocked()
}

// Close flushes and closes the journal; reads keep working, further writes
// fail with ErrDurability. A memory-only store is unaffected. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jw == nil {
		return nil
	}
	err := s.jw.Close()
	s.jw = nil
	if s.jerr == nil {
		s.jerr = fmt.Errorf("%w: store closed", ErrDurability)
	}
	return err
}

// ActiveByTenant counts non-terminal requests per tenant (admission input).
func (s *Store) ActiveByTenant() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string]int{}
	for _, req := range s.byID {
		if !req.Terminal() {
			out[req.Spec.Tenant]++
		}
	}
	return out
}

// PhaseCounts tallies requests by phase (exported as the
// dvdc_service_requests gauge family).
func (s *Store) PhaseCounts() map[Phase]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[Phase]int{}
	for _, req := range s.byID {
		out[req.Status.Phase]++
	}
	return out
}

// Tenants lists every tenant that ever submitted, sorted.
func (s *Store) Tenants() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := map[string]bool{}
	for _, req := range s.byID {
		seen[req.Spec.Tenant] = true
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// clone deep-copies a request.
func (r *Request) clone() *Request {
	out := *r
	out.Spec.Nodes = append([]int(nil), r.Spec.Nodes...)
	out.Status.Casualties = append([]int(nil), r.Status.Casualties...)
	out.Status.Conditions = append([]Condition(nil), r.Status.Conditions...)
	out.Status.TraceIDs = append([]string(nil), r.Status.TraceIDs...)
	return &out
}
