package service

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"dvdc/internal/service/journal"
)

// journalFileName is the log inside a store's state dir.
const journalFileName = "journal.log"

// Journal operations. Every store mutation appends exactly one record; a
// compaction rewrites the log as a single snapshot record.
const (
	opCreate   = "create"   // one new request; Rev/NextID are the post-apply counters
	opStatus   = "status"   // one full post-mutation object; Rev is the post-apply revision
	opSnapshot = "snapshot" // entire store state; replaces everything before it
)

// journalRecord is the JSON payload inside one journal frame. Records carry
// whole objects, not diffs: replay is pure replacement, so a record is either
// applied exactly or rejected exactly — there is no partially-applied state
// for corruption to hide in.
type journalRecord struct {
	Op       string           `json:"op"`
	Rev      int64            `json:"rev"`
	NextID   int64            `json:"next_id,omitempty"`
	Req      *Request         `json:"req,omitempty"`
	Snapshot *journalSnapshot `json:"snapshot,omitempty"`
}

// journalSnapshot is a compaction record: the full store, submission order
// preserved.
type journalSnapshot struct {
	Rev      int64      `json:"rev"`
	NextID   int64      `json:"next_id"`
	Requests []*Request `json:"requests"`
}

// replayState is the store image a replay builds up.
type replayState struct {
	rev    int64
	nextID int64
	byID   map[string]*Request
	order  []string
}

// idSuffix parses the numeric tail of a request id ("cr-7" -> 7), verifying
// the prefix matches the request's kind.
func idSuffix(r *Request) (int64, error) {
	prefix := idPrefix(r.Kind) + "-"
	if !strings.HasPrefix(r.ID, prefix) {
		return 0, fmt.Errorf("id %q does not match kind %s (want prefix %q)", r.ID, r.Kind, prefix)
	}
	n, err := strconv.ParseInt(r.ID[len(prefix):], 10, 64)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("id %q has no valid sequence number", r.ID)
	}
	return n, nil
}

// validateStored rejects any replayed object the live store could not have
// produced. This is the "fail loudly" half of the recovery contract: a record
// that passed its CRC but decodes to an invalid object is corruption the
// framing cannot see, and loading it would poison every later decision
// (admission counts, scheduling, the API).
func validateStored(r *Request) error {
	if r == nil {
		return fmt.Errorf("record carries no request")
	}
	if r.APIVersion != APIVersion {
		return fmt.Errorf("request %q has api version %q, want %q", r.ID, r.APIVersion, APIVersion)
	}
	if err := r.Kind.Validate(r.Spec); err != nil {
		return fmt.Errorf("request %q: %w", r.ID, err)
	}
	if _, err := idSuffix(r); err != nil {
		return err
	}
	if r.Generation < 1 {
		return fmt.Errorf("request %q has generation %d", r.ID, r.Generation)
	}
	if r.Status.ObservedGeneration < 0 || r.Status.ObservedGeneration > r.Generation {
		return fmt.Errorf("request %q observed generation %d outside [0, %d]",
			r.ID, r.Status.ObservedGeneration, r.Generation)
	}
	switch r.Status.Phase {
	case PhasePending, PhaseScheduled, PhaseInProgress, PhaseSucceeded, PhaseFailed:
	default:
		return fmt.Errorf("request %q has unknown phase %q", r.ID, r.Status.Phase)
	}
	if r.Status.Retries < 0 {
		return fmt.Errorf("request %q has negative retries %d", r.ID, r.Status.Retries)
	}
	if r.Created.IsZero() {
		return fmt.Errorf("request %q has no creation time", r.ID)
	}
	return nil
}

// replayRecords folds intact journal payloads into a store image. Any
// semantic violation — undecodable JSON, an invalid object, a revision that
// does not advance by exactly one, an id collision — is a hard error naming
// the offending record: prefix-consistency ends at the framing layer, and a
// semantically broken record means the log (not just its tail) is damaged.
func replayRecords(payloads [][]byte) (*replayState, error) {
	st := &replayState{byID: map[string]*Request{}}
	for i, p := range payloads {
		var rec journalRecord
		if err := json.Unmarshal(p, &rec); err != nil {
			return nil, fmt.Errorf("journal record %d: %w", i, err)
		}
		switch rec.Op {
		case opSnapshot:
			snap := rec.Snapshot
			if snap == nil {
				return nil, fmt.Errorf("journal record %d: snapshot without body", i)
			}
			if snap.Rev < int64(len(snap.Requests)) {
				return nil, fmt.Errorf("journal record %d: snapshot rev %d below its %d requests",
					i, snap.Rev, len(snap.Requests))
			}
			ns := &replayState{rev: snap.Rev, nextID: snap.NextID, byID: map[string]*Request{}}
			var maxSeq int64
			for j, r := range snap.Requests {
				if err := validateStored(r); err != nil {
					return nil, fmt.Errorf("journal record %d: snapshot request %d: %w", i, j, err)
				}
				if _, dup := ns.byID[r.ID]; dup {
					return nil, fmt.Errorf("journal record %d: snapshot repeats id %q", i, r.ID)
				}
				seq, _ := idSuffix(r)
				if seq > maxSeq {
					maxSeq = seq
				}
				ns.byID[r.ID] = r
				ns.order = append(ns.order, r.ID)
			}
			if ns.nextID < maxSeq {
				return nil, fmt.Errorf("journal record %d: snapshot next id %d below max assigned %d",
					i, ns.nextID, maxSeq)
			}
			st = ns
		case opCreate:
			if err := validateStored(rec.Req); err != nil {
				return nil, fmt.Errorf("journal record %d: %w", i, err)
			}
			if rec.Rev != st.rev+1 {
				return nil, fmt.Errorf("journal record %d: create at rev %d, store at %d", i, rec.Rev, st.rev)
			}
			seq, _ := idSuffix(rec.Req)
			if rec.NextID != seq {
				return nil, fmt.Errorf("journal record %d: create id %q disagrees with next id %d",
					i, rec.Req.ID, rec.NextID)
			}
			if rec.NextID != st.nextID+1 {
				return nil, fmt.Errorf("journal record %d: next id went %d -> %d", i, st.nextID, rec.NextID)
			}
			if _, dup := st.byID[rec.Req.ID]; dup {
				return nil, fmt.Errorf("journal record %d: duplicate create of %q", i, rec.Req.ID)
			}
			st.rev, st.nextID = rec.Rev, rec.NextID
			st.byID[rec.Req.ID] = rec.Req
			st.order = append(st.order, rec.Req.ID)
		case opStatus:
			if err := validateStored(rec.Req); err != nil {
				return nil, fmt.Errorf("journal record %d: %w", i, err)
			}
			if rec.Rev != st.rev+1 {
				return nil, fmt.Errorf("journal record %d: status at rev %d, store at %d", i, rec.Rev, st.rev)
			}
			old, ok := st.byID[rec.Req.ID]
			if !ok {
				return nil, fmt.Errorf("journal record %d: status for unknown request %q", i, rec.Req.ID)
			}
			if old.Kind != rec.Req.Kind {
				return nil, fmt.Errorf("journal record %d: status changes kind of %q (%s -> %s)",
					i, rec.Req.ID, old.Kind, rec.Req.Kind)
			}
			st.rev = rec.Rev
			st.byID[rec.Req.ID] = rec.Req
		default:
			return nil, fmt.Errorf("journal record %d: unknown op %q", i, rec.Op)
		}
	}
	return st, nil
}

// encodeRecord marshals one record for the journal, bounding it against the
// frame limit so an absurd spec cannot wedge the log.
func encodeRecord(rec journalRecord) ([]byte, error) {
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	if len(b) > journal.MaxRecord {
		return nil, fmt.Errorf("journal record of %d bytes exceeds limit %d", len(b), journal.MaxRecord)
	}
	return b, nil
}
