package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// The HTTP+JSON API, mounted beside the -obs-addr endpoints (/metrics,
// /spans, ...) on the same mux. Everything lives under /api/v1/:
//
//	POST /api/v1/requests            submit {"kind": ..., "spec": {...}}
//	GET  /api/v1/requests[?tenant=]  list (submission order)
//	GET  /api/v1/requests/{id}       one object
//	GET  /api/v1/requests/{id}/watch long-poll: ?rev=N blocks until the store
//	                                 moves past N or ?timeout= (default 30s);
//	                                 &stream=1 upgrades to a chunked ndjson
//	                                 stream of one watch reply per change,
//	                                 ending at a terminal phase or timeout
//	GET  /api/v1/quotas              per-tenant quotas and live usage
//
// Rejections are typed: 400 carries {"error": ...} for malformed specs, 429
// carries the QuotaError fields so clients can tell "slow down" from "fix
// your request".

// submitBody is the POST /api/v1/requests payload. APIVersion is optional
// but, when present, must match.
type submitBody struct {
	APIVersion string `json:"api_version,omitempty"`
	Kind       Kind   `json:"kind"`
	Spec       Spec   `json:"spec"`
}

// listReply is the GET /api/v1/requests payload.
type listReply struct {
	APIVersion string     `json:"api_version"`
	Rev        int64      `json:"rev"`
	Items      []*Request `json:"items"`
}

// watchReply is the GET /api/v1/requests/{id}/watch payload.
type watchReply struct {
	Rev     int64    `json:"rev"`
	Request *Request `json:"request"`
}

// QuotaStatus is one tenant's row in GET /api/v1/quotas.
type QuotaStatus struct {
	Limit  int `json:"limit"`
	Active int `json:"active"`
}

// quotasReply is the GET /api/v1/quotas payload.
type quotasReply struct {
	Default int                    `json:"default"`
	Tenants map[string]QuotaStatus `json:"tenants"`
}

// apiError is every non-2xx body.
type apiError struct {
	Error  string `json:"error"`
	Tenant string `json:"tenant,omitempty"`
	Limit  int    `json:"limit,omitempty"`
	Active int    `json:"active,omitempty"`
}

const watchDefaultTimeout = 30 * time.Second

// Mount registers the API on mux (typically the obs endpoint's mux, so the
// control plane and the telemetry plane share one listener).
func (s *Service) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /api/v1/requests", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/requests", s.handleList)
	mux.HandleFunc("GET /api/v1/requests/{id}", s.handleGet)
	mux.HandleFunc("GET /api/v1/requests/{id}/watch", s.handleWatch)
	mux.HandleFunc("GET /api/v1/quotas", s.handleQuotas)
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client went away; nothing to do
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var body submitBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if body.APIVersion != "" && body.APIVersion != APIVersion {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("api version %q not served (want %s)", body.APIVersion, APIVersion)})
		return
	}
	req, err := s.Submit(body.Kind, body.Spec)
	if err != nil {
		var qe *QuotaError
		if errors.As(err, &qe) {
			writeJSON(w, http.StatusTooManyRequests, apiError{
				Error: qe.Error(), Tenant: qe.Tenant, Limit: qe.Limit, Active: qe.Active,
			})
			return
		}
		if errors.Is(err, ErrDurability) {
			// The request was admitted but not persisted: an internal fault,
			// not a client one.
			writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, req)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, listReply{
		APIVersion: APIVersion,
		Rev:        s.Store.Rev(),
		Items:      s.Store.List(r.URL.Query().Get("tenant")),
	})
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	req, ok := s.Store.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("no request %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, req)
}

func (s *Service) handleWatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Store.Get(id); !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("no request %q", id)})
		return
	}
	rev := int64(-1)
	if v := r.URL.Query().Get("rev"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &rev); err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad rev %q", v)})
			return
		}
	}
	timeout := watchDefaultTimeout
	if v := r.URL.Query().Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad timeout %q", v)})
			return
		}
		timeout = d
	}
	deadline := time.Now().Add(timeout)
	if v := r.URL.Query().Get("stream"); v != "" && v != "0" && v != "false" {
		s.streamWatch(w, r, id, rev, deadline)
		return
	}
	// Long poll: return as soon as the store moves past rev (or the request
	// is already terminal, which can never change again), else at timeout.
	for {
		req, ok := s.Store.Get(id)
		if !ok {
			writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("no request %q", id)})
			return
		}
		cur := s.Store.Rev()
		if req.Terminal() || cur > rev || !time.Now().Before(deadline) {
			writeJSON(w, http.StatusOK, watchReply{Rev: cur, Request: req})
			return
		}
		s.Store.Wait(rev, deadline)
	}
}

// streamWatch writes a chunked ndjson stream: the request's current state
// immediately, then one watch reply per store revision that changed it, until
// a terminal phase, the deadline, or the client going away. The store's Wait
// is level-triggered with no per-watcher queue, so a consumer that stops
// reading blocks only this handler's goroutine on the response write — never
// the store or other watchers (pinned by TestStreamSlowConsumerDoesNotWedge).
func (s *Service) streamWatch(w http.ResponseWriter, r *http.Request, id string, rev int64, deadline time.Time) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ctx := r.Context()
	for {
		req, ok := s.Store.Get(id)
		if !ok {
			return // deleted mid-watch: end the stream
		}
		cur := s.Store.Rev()
		if cur > rev {
			if err := enc.Encode(watchReply{Rev: cur, Request: req}); err != nil {
				return // client went away
			}
			if flusher != nil {
				flusher.Flush()
			}
			rev = cur
		}
		if req.Terminal() || ctx.Err() != nil || !time.Now().Before(deadline) {
			return
		}
		s.Store.Wait(rev, deadline)
	}
}

func (s *Service) handleQuotas(w http.ResponseWriter, _ *http.Request) {
	active := s.Store.ActiveByTenant()
	out := quotasReply{Default: s.Admission.QuotaFor("").MaxActive, Tenants: map[string]QuotaStatus{}}
	for _, t := range s.Admission.Tenants() {
		out.Tenants[t] = QuotaStatus{Limit: s.Admission.QuotaFor(t).MaxActive, Active: active[t]}
	}
	for _, t := range s.Store.Tenants() {
		if _, ok := out.Tenants[t]; !ok {
			out.Tenants[t] = QuotaStatus{Limit: s.Admission.QuotaFor(t).MaxActive, Active: active[t]}
		}
	}
	writeJSON(w, http.StatusOK, out)
}
