package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"dvdc/internal/obs"
	"dvdc/internal/service/journal"
)

// storeImage is a comparable snapshot of a store's externally visible state.
// Comparison goes through JSON because that is the durability boundary:
// time.Time loses its monotonic reading on the round trip, so raw DeepEqual
// would report false drift that no API client can observe.
func storeImage(t *testing.T, s *Store) string {
	t.Helper()
	b, err := json.MarshalIndent(s.List(""), "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// scriptStore runs a canned request sequence against a store: creates across
// two tenants, full phase walks to Succeeded and Failed, and one request left
// InProgress — every record shape the journal can carry.
func scriptStore(t *testing.T, s *Store) {
	t.Helper()
	must := func(req *Request, err error) *Request {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return req
	}
	update := func(id string, f func(now time.Time, req *Request)) {
		t.Helper()
		if _, err := s.UpdateStatus(id, f); err != nil {
			t.Fatal(err)
		}
	}
	ck1 := must(s.Create(KindCheckpoint, Spec{Tenant: "alpha", Steps: 25}))
	ck2 := must(s.Create(KindCheckpoint, Spec{Tenant: "beta", Priority: 3}))
	rs1 := must(s.Create(KindRestore, Spec{Tenant: "alpha", Nodes: []int{1, 3}}))

	// ck1: full walk to Succeeded.
	update(ck1.ID, func(now time.Time, r *Request) {
		r.Status.Phase = PhaseScheduled
		r.Status.setCondition(now, CondScheduled, true, "Queued", "entered the priority queue")
	})
	update(ck1.ID, func(now time.Time, r *Request) {
		r.Status.Phase = PhaseInProgress
		r.Status.ObservedGeneration = r.Generation
		r.Status.setCondition(now, CondExecuting, true, "Attempt", "attempt 1 of 4")
	})
	update(ck1.ID, func(now time.Time, r *Request) {
		r.Status.Phase = PhaseSucceeded
		r.Status.Epoch = 7
		r.Status.setCondition(now, CondComplete, true, "Succeeded", "")
	})

	// rs1: retried once, then Failed with casualties.
	update(rs1.ID, func(now time.Time, r *Request) {
		r.Status.Phase = PhaseScheduled
		r.Status.Retries = 1
		r.Status.Message = "attempt 1 failed: prepare fanout failed (retrying in 2ms)"
		r.Status.setCondition(now, CondRetrying, true, "Backoff", r.Status.Message)
	})
	update(rs1.ID, func(now time.Time, r *Request) {
		r.Status.Phase = PhaseFailed
		r.Status.ObservedGeneration = r.Generation
		r.Status.Casualties = []int{1, 3}
		r.Status.setCondition(now, CondComplete, false, "Failed", "gave up after 2 attempts")
	})

	// ck2: left InProgress — the orphan a restart must resume.
	update(ck2.ID, func(now time.Time, r *Request) {
		r.Status.Phase = PhaseInProgress
		r.Status.ObservedGeneration = r.Generation
		r.Status.setCondition(now, CondExecuting, true, "Attempt", "attempt 1 of 4")
	})
}

func TestOpenStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	st, info, err := OpenStore(dir, DurableOptions{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 0 || info.Requests != 0 {
		t.Fatalf("fresh replay info = %+v", info)
	}
	scriptStore(t, st)
	wantImage := storeImage(t, st)
	wantRev := st.Rev()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, info2, err := OpenStore(dir, DurableOptions{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if info2.Records != int(wantRev) || info2.Requests != 3 || info2.DroppedBytes != 0 {
		t.Fatalf("replay info = %+v, want %d records / 3 requests", info2, wantRev)
	}
	if got := storeImage(t, st2); got != wantImage {
		t.Fatalf("replayed store differs:\n got: %s\nwant: %s", got, wantImage)
	}
	if st2.Rev() != wantRev {
		t.Fatalf("replayed rev = %d, want %d", st2.Rev(), wantRev)
	}
	// Admission counts come back bit-identically: one non-terminal request
	// (ck2, InProgress) under beta.
	if got := st2.ActiveByTenant(); !reflect.DeepEqual(got, map[string]int{"beta": 1}) {
		t.Fatalf("ActiveByTenant after replay = %v", got)
	}
	// ID assignment continues where the dead controller stopped.
	next, err := st2.Create(KindCheckpoint, Spec{Tenant: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	if next.ID != "cr-4" {
		t.Fatalf("next id after replay = %s, want cr-4", next.ID)
	}
}

func TestClosedStoreRefusesWrites(t *testing.T) {
	st, _, err := OpenStore(t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Create(KindCheckpoint, Spec{Tenant: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := st.Create(KindCheckpoint, Spec{Tenant: "a"}); !errors.Is(err, ErrDurability) {
		t.Fatalf("Create after Close = %v, want ErrDurability", err)
	}
	if _, err := st.UpdateStatus("cr-1", func(time.Time, *Request) {}); !errors.Is(err, ErrDurability) {
		t.Fatalf("UpdateStatus after Close = %v, want ErrDurability", err)
	}
	// Reads still serve the in-memory image.
	if _, ok := st.Get("cr-1"); !ok {
		t.Fatal("Get after Close lost the request")
	}
}

func TestReconcilerResumesAfterRestart(t *testing.T) {
	dir := t.TempDir()
	st, _, err := OpenStore(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	scriptStore(t, st) // leaves cr-2 InProgress
	// Plus one Pending and one Scheduled request the new controller must also
	// drive home.
	pend, err := st.Create(KindCheckpoint, Spec{Tenant: "alpha", Steps: 5})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := st.Create(KindRestore, Spec{Tenant: "beta", Nodes: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.UpdateStatus(sched.ID, func(now time.Time, r *Request) {
		r.Status.Phase = PhaseScheduled
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh controller over the same state dir.
	exec := &fakeExec{}
	reg := obs.NewRegistry()
	svc, err := Open(exec, Options{StateDir: dir, Backoff: 2 * time.Millisecond, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Stop()
	if svc.Replay.Requests != 5 {
		t.Fatalf("Replay = %+v, want 5 requests", svc.Replay)
	}
	svc.Start()

	for _, id := range []string{"cr-2", pend.ID, sched.ID} {
		req, err := svc.WaitTerminal(id, 10*time.Second)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if req.Status.Phase != PhaseSucceeded {
			t.Fatalf("%s converged %s: %+v", id, req.Status.Phase, req.Status)
		}
		if req.Status.ObservedGeneration != req.Generation {
			t.Fatalf("%s observed generation %d != generation %d", id, req.Status.ObservedGeneration, req.Generation)
		}
	}
	// The orphaned InProgress request (and only it) carries the Resumed
	// condition naming the restart.
	orphan, _ := svc.Store.Get("cr-2")
	var resumed *Condition
	for i, c := range orphan.Status.Conditions {
		if c.Type == CondResumed {
			resumed = &orphan.Status.Conditions[i]
		}
	}
	if resumed == nil || !resumed.Status || resumed.Reason != "ControllerRestart" {
		t.Fatalf("cr-2 missing Resumed condition: %+v", orphan.Status.Conditions)
	}
	for _, id := range []string{pend.ID, sched.ID} {
		req, _ := svc.Store.Get(id)
		for _, c := range req.Status.Conditions {
			if c.Type == CondResumed {
				t.Fatalf("%s was never in flight but carries Resumed: %+v", id, c)
			}
		}
	}
	// Terminal requests were not re-driven: the fake saw exactly the three
	// resumed/fresh requests (two checkpoints + one restore).
	snap := exec.snapshot()
	if snap.checkpoints != 2 || len(snap.restores) != 1 {
		t.Fatalf("executor saw %d checkpoints / %d restores, want 2 / 1", snap.checkpoints, len(snap.restores))
	}
	if got := reg.Counter("dvdc_service_resumes_total", "kind", string(KindCheckpoint)).Value(); got != 1 {
		t.Fatalf("dvdc_service_resumes_total{kind=Checkpoint} = %d, want 1", got)
	}
}

func TestCompactionBoundsJournal(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	const limit = 8 << 10
	st, _, err := OpenStore(dir, DurableOptions{CompactBytes: limit, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	// Status-update-heavy traffic — the case compaction wins: a handful of
	// objects, hundreds of mutations. The uncompacted log would be ~100x the
	// snapshot.
	var ids []string
	for i := 0; i < 6; i++ {
		req, err := st.Create(KindCheckpoint, Spec{Tenant: "alpha", Steps: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, req.ID)
	}
	for round := 0; round < 100; round++ {
		for _, id := range ids {
			if _, err := st.UpdateStatus(id, func(now time.Time, r *Request) {
				r.Status.Message = fmt.Sprintf("attempt heartbeat %d", round)
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, id := range ids {
		if _, err := st.UpdateStatus(id, func(now time.Time, r *Request) {
			r.Status.Phase = PhaseSucceeded
			r.Status.ObservedGeneration = r.Generation
			r.Status.Epoch = uint64(i + 1)
			r.Status.setCondition(now, CondComplete, true, "Succeeded", "")
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("dvdc_service_journal_compactions_total").Value(); got < 1 {
		t.Fatalf("compactions = %d, want >= 1", got)
	}
	wantImage := storeImage(t, st)
	wantRev := st.Rev()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, journalFileName))
	if err != nil {
		t.Fatal(err)
	}
	// The snapshot itself (60 terminal objects) is the floor; the point is the
	// log stops growing linearly with mutation count. One snapshot plus the
	// records since the last compaction must fit in a couple of limits.
	if fi.Size() > 3*limit {
		t.Fatalf("journal is %d bytes after compaction (limit %d)", fi.Size(), limit)
	}
	st2, _, err := OpenStore(dir, DurableOptions{CompactBytes: limit, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := storeImage(t, st2); got != wantImage {
		t.Fatalf("compacted store replayed differently:\n got: %s\nwant: %s", got, wantImage)
	}
	if st2.Rev() != wantRev {
		t.Fatalf("rev after compacted replay = %d, want %d", st2.Rev(), wantRev)
	}
}

// TestCrashAtEveryOffset is the headline battery: build a journal from a
// scripted sequence, then for every byte length L replay the L-byte prefix —
// as if the machine died with exactly L bytes durable. Every prefix must open
// without error into the store the first K complete records describe, with
// the revision non-decreasing in L and admission counts agreeing with a
// from-scratch recount.
func TestCrashAtEveryOffset(t *testing.T) {
	srcDir := t.TempDir()
	st, _, err := OpenStore(srcDir, DurableOptions{CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	scriptStore(t, st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(srcDir, journalFileName))
	if err != nil {
		t.Fatal(err)
	}

	// Record boundaries and the expected image after each record count.
	payloads, valid, err := journal.ScanBytes(raw)
	if err != nil || valid != int64(len(raw)) {
		t.Fatalf("source journal not fully valid: valid=%d len=%d err=%v", valid, len(raw), err)
	}
	boundaries := []int{8} // end of header
	for _, p := range payloads {
		boundaries = append(boundaries, boundaries[len(boundaries)-1]+8+len(p))
	}
	images := make([]string, len(payloads)+1)
	for k := 0; k <= len(payloads); k++ {
		img, err := replayRecords(payloads[:k])
		if err != nil {
			t.Fatalf("replay of %d records: %v", k, err)
		}
		b, _ := json.MarshalIndent(requestsInOrder(img), "", " ")
		images[k] = string(b)
	}

	crashDir := t.TempDir()
	path := filepath.Join(crashDir, journalFileName)
	prevRev := int64(-1)
	for L := 0; L <= len(raw); L++ {
		if err := os.WriteFile(path, raw[:L], 0o644); err != nil {
			t.Fatal(err)
		}
		st2, info, err := OpenStore(crashDir, DurableOptions{CompactBytes: -1})
		if err != nil {
			t.Fatalf("prefix %d: OpenStore: %v", L, err)
		}
		wantK := 0
		for _, b := range boundaries[1:] {
			if b <= L {
				wantK++
			}
		}
		if info.Records != wantK {
			t.Fatalf("prefix %d: replayed %d records, want %d", L, info.Records, wantK)
		}
		rev := st2.Rev()
		if rev != int64(wantK) {
			t.Fatalf("prefix %d: rev = %d, want %d", L, rev, wantK)
		}
		if rev < prevRev {
			t.Fatalf("prefix %d: revision regressed %d -> %d", L, prevRev, rev)
		}
		prevRev = rev
		if got := storeImage(t, st2); got != images[wantK] {
			t.Fatalf("prefix %d: store differs from the %d-record image:\n got: %s\nwant: %s",
				L, wantK, got, images[wantK])
		}
		// Admission counts must agree with a from-scratch recount.
		recount := map[string]int{}
		for _, r := range st2.List("") {
			if !r.Terminal() {
				recount[r.Spec.Tenant]++
			}
		}
		if got := st2.ActiveByTenant(); !reflect.DeepEqual(got, recount) {
			t.Fatalf("prefix %d: ActiveByTenant = %v, recount = %v", L, got, recount)
		}
		if err := st2.Close(); err != nil {
			t.Fatalf("prefix %d: Close: %v", L, err)
		}
	}

	// A sampling of truncation points must also accept new writes cleanly —
	// the recovered log is a real journal, not a read-only artifact.
	for _, L := range []int{0, 3, boundaries[1] - 1, boundaries[1], boundaries[len(boundaries)/2] + 5, len(raw)} {
		if err := os.WriteFile(path, raw[:L], 0o644); err != nil {
			t.Fatal(err)
		}
		st2, _, err := OpenStore(crashDir, DurableOptions{CompactBytes: -1})
		if err != nil {
			t.Fatalf("prefix %d: OpenStore: %v", L, err)
		}
		req, err := st2.Create(KindCheckpoint, Spec{Tenant: "gamma"})
		if err != nil {
			t.Fatalf("prefix %d: Create after recovery: %v", L, err)
		}
		img := storeImage(t, st2)
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
		st3, _, err := OpenStore(crashDir, DurableOptions{CompactBytes: -1})
		if err != nil {
			t.Fatalf("prefix %d: reopen after append: %v", L, err)
		}
		if _, ok := st3.Get(req.ID); !ok {
			t.Fatalf("prefix %d: post-recovery create %s lost on reopen", L, req.ID)
		}
		if got := storeImage(t, st3); got != img {
			t.Fatalf("prefix %d: post-recovery append replayed differently", L)
		}
		st3.Close()
	}
}

// requestsInOrder materializes a replay image's objects in submission order
// (what Store.List would return).
func requestsInOrder(img *replayState) []*Request {
	out := make([]*Request, 0, len(img.order))
	for _, id := range img.order {
		out = append(out, img.byID[id])
	}
	return out
}

// TestCorruptionAtEveryByte flips every byte of the journal in turn: replay
// must never panic and must either fail loudly or open a store that passes
// full validation — never load garbage.
func TestCorruptionAtEveryByte(t *testing.T) {
	srcDir := t.TempDir()
	st, _, err := OpenStore(srcDir, DurableOptions{CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	scriptStore(t, st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(srcDir, journalFileName))
	if err != nil {
		t.Fatal(err)
	}

	crashDir := t.TempDir()
	path := filepath.Join(crashDir, journalFileName)
	for off := 0; off < len(raw); off++ {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0xff
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		st2, _, err := OpenStore(crashDir, DurableOptions{CompactBytes: -1})
		if off < 8 {
			// Header damage: the file is not recognizably a journal and must
			// be refused, not rebuilt over.
			if !errors.Is(err, journal.ErrNotJournal) {
				t.Fatalf("offset %d: header flip gave %v, want ErrNotJournal", off, err)
			}
			continue
		}
		if err != nil {
			// CRC32 catches every single-byte flip, so a record flip can only
			// surface as a torn tail — never a replay error.
			t.Fatalf("offset %d: OpenStore: %v", off, err)
		}
		for _, r := range st2.List("") {
			if verr := validateStored(r); verr != nil {
				t.Fatalf("offset %d: replay loaded an invalid object: %v", off, verr)
			}
		}
		st2.Close()
	}
}
