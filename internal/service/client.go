package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Client speaks the /api/v1 wire protocol. It is what dvdcctl's apply/get/
// watch subcommands use against a running daemon; quota rejections come back
// as *QuotaError so callers can distinguish backpressure from bad input.
type Client struct {
	base string
	http *http.Client
}

// NewClient builds a client for a daemon's API endpoint. addr may be a bare
// host:port or a full http:// URL.
func NewClient(addr string) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{base: strings.TrimRight(base, "/"), http: &http.Client{}}
}

// decodeError turns a non-2xx response into a typed error.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var ae apiError
	if err := json.Unmarshal(body, &ae); err == nil && ae.Error != "" {
		if resp.StatusCode == http.StatusTooManyRequests {
			return &QuotaError{Tenant: ae.Tenant, Limit: ae.Limit, Active: ae.Active}
		}
		return fmt.Errorf("service: %s (HTTP %d)", ae.Error, resp.StatusCode)
	}
	return fmt.Errorf("service: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
}

func (c *Client) getJSON(path string, out interface{}) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts one request object and returns the stored copy with its id.
func (c *Client) Submit(kind Kind, spec Spec) (*Request, error) {
	payload, err := json.Marshal(submitBody{APIVersion: APIVersion, Kind: kind, Spec: spec})
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Post(c.base+"/api/v1/requests", "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, decodeError(resp)
	}
	var req Request
	if err := json.NewDecoder(resp.Body).Decode(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

// Get fetches one request by id.
func (c *Client) Get(id string) (*Request, error) {
	var req Request
	if err := c.getJSON("/api/v1/requests/"+url.PathEscape(id), &req); err != nil {
		return nil, err
	}
	return &req, nil
}

// List fetches all requests, optionally filtered by tenant.
func (c *Client) List(tenant string) ([]*Request, error) {
	path := "/api/v1/requests"
	if tenant != "" {
		path += "?tenant=" + url.QueryEscape(tenant)
	}
	var reply listReply
	if err := c.getJSON(path, &reply); err != nil {
		return nil, err
	}
	return reply.Items, nil
}

// Watch follows the request's chunked ndjson watch stream until it reaches a
// terminal phase or the timeout passes, invoking observe (may be nil) on
// every phase change. It returns the last copy seen; hitting the timeout
// before a terminal phase is an error naming the stuck phase. A stream the
// server ends early (its own per-connection timeout) is simply re-opened from
// the last seen revision.
func (c *Client) Watch(id string, timeout time.Duration, observe func(*Request)) (*Request, error) {
	deadline := time.Now().Add(timeout)
	rev := int64(-1)
	var last *Request
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			phase := Phase("unknown")
			if last != nil {
				phase = last.Status.Phase
			}
			return last, fmt.Errorf("service: request %s stuck in phase %s after %v", id, phase, timeout)
		}
		poll := remain
		if poll > watchDefaultTimeout {
			poll = watchDefaultTimeout
		}
		path := fmt.Sprintf("/api/v1/requests/%s/watch?rev=%d&timeout=%s&stream=1", url.PathEscape(id), rev, poll)
		resp, err := c.http.Get(c.base + path)
		if err != nil {
			return last, err
		}
		if resp.StatusCode != http.StatusOK {
			err := decodeError(resp)
			resp.Body.Close()
			return last, err
		}
		dec := json.NewDecoder(resp.Body)
		for {
			var reply watchReply
			if err := dec.Decode(&reply); err != nil {
				break // stream ended (server timeout or transport hiccup): re-open
			}
			if reply.Request != nil && (last == nil || reply.Rev > rev) {
				if observe != nil && (last == nil || last.Status.Phase != reply.Request.Status.Phase) {
					observe(reply.Request)
				}
				last = reply.Request
			}
			if reply.Rev > rev {
				rev = reply.Rev
			}
			if last != nil && last.Terminal() {
				resp.Body.Close()
				return last, nil
			}
		}
		resp.Body.Close()
	}
}

// Quotas fetches the per-tenant quota table.
func (c *Client) Quotas() (map[string]QuotaStatus, int, error) {
	var reply quotasReply
	if err := c.getJSON("/api/v1/quotas", &reply); err != nil {
		return nil, 0, err
	}
	return reply.Tenants, reply.Default, nil
}
