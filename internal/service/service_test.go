package service

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dvdc/internal/obs"
)

// fakeCasualty satisfies CasualtyError the way the runtime's
// PartialCommitError does.
type fakeCasualty struct{ nodes []int }

func (f *fakeCasualty) Error() string        { return fmt.Sprintf("partial commit: nodes %v", f.nodes) }
func (f *fakeCasualty) CasualtyNodes() []int { return f.nodes }

// fakeExec is a scriptable executor: failures fails that many checkpoint
// attempts before succeeding, casualtyOn makes that attempt (1-based) return
// a CasualtyError, restoreErr fails every restore.
type fakeExec struct {
	mu          sync.Mutex
	epoch       uint64
	failures    int
	casualtyOn  int
	casualties  []int
	restoreErr  error
	checkpoints int
	restores    [][]int
	order       []string // tenant per executed attempt, in execution order
	quiesced    int
}

func (f *fakeExec) ExecuteCheckpoint(_ obs.SpanContext, steps uint64) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.checkpoints++
	f.order = append(f.order, fmt.Sprintf("ckpt-%d", steps))
	if f.casualtyOn == f.checkpoints {
		f.epoch++
		return f.epoch, &fakeCasualty{nodes: append([]int(nil), f.casualties...)}
	}
	if f.checkpoints <= f.failures {
		return 0, errors.New("prepare fanout failed")
	}
	f.epoch++
	return f.epoch, nil
}

func (f *fakeExec) ExecuteRestore(_ obs.SpanContext, nodes []int) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.restores = append(f.restores, append([]int(nil), nodes...))
	f.order = append(f.order, fmt.Sprintf("restore-%v", nodes))
	if f.restoreErr != nil {
		return 0, f.restoreErr
	}
	return f.epoch, nil
}

func (f *fakeExec) Quiesce() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.quiesced++
	return nil
}

func (f *fakeExec) snapshot() fakeExec {
	f.mu.Lock()
	defer f.mu.Unlock()
	return fakeExec{
		epoch:       f.epoch,
		checkpoints: f.checkpoints,
		restores:    append([][]int(nil), f.restores...),
		order:       append([]string(nil), f.order...),
		quiesced:    f.quiesced,
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		kind Kind
		spec Spec
		ok   bool
	}{
		{KindCheckpoint, Spec{Tenant: "a", Steps: 10}, true},
		{KindCheckpoint, Spec{Tenant: "a"}, true},
		{KindCheckpoint, Spec{Steps: 10}, false},                           // no tenant
		{KindCheckpoint, Spec{Tenant: "a", Nodes: []int{1}}, false},        // nodes on checkpoint
		{KindRestore, Spec{Tenant: "a", Nodes: []int{0, 2}}, true},         // ok
		{KindRestore, Spec{Tenant: "a"}, false},                            // no nodes
		{KindRestore, Spec{Tenant: "a", Nodes: []int{1, 1}}, false},        // dup
		{KindRestore, Spec{Tenant: "a", Nodes: []int{-1}}, false},          // negative
		{KindRestore, Spec{Tenant: "a", Nodes: []int{1}, Steps: 3}, false}, // steps on restore
		{Kind("Bogus"), Spec{Tenant: "a"}, false},
	}
	for i, c := range cases {
		if err := c.kind.Validate(c.spec); (err == nil) != c.ok {
			t.Errorf("case %d: Validate(%s, %+v) = %v, want ok=%v", i, c.kind, c.spec, err, c.ok)
		}
	}
}

func TestStoreRevisionsAndWatch(t *testing.T) {
	st := NewStore()
	if st.Rev() != 0 {
		t.Fatalf("fresh store rev = %d, want 0", st.Rev())
	}
	req, err := st.Create(KindCheckpoint, Spec{Tenant: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if req.ID != "cr-1" || req.Generation != 1 || req.Status.Phase != PhasePending {
		t.Fatalf("created request = %+v", req)
	}
	if st.Rev() != 1 {
		t.Fatalf("rev after create = %d, want 1", st.Rev())
	}
	rr, err := st.Create(KindRestore, Spec{Tenant: "a", Nodes: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if rr.ID != "rr-2" {
		t.Fatalf("restore id = %s, want rr-2", rr.ID)
	}

	// A watcher parked at rev 2 wakes when a status write bumps to 3.
	done := make(chan int64, 1)
	go func() { done <- st.Wait(2, time.Now().Add(5*time.Second)) }()
	time.Sleep(10 * time.Millisecond)
	if _, err := st.UpdateStatus(req.ID, func(now time.Time, r *Request) {
		r.Status.Phase = PhaseScheduled
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case rev := <-done:
		if rev != 3 {
			t.Fatalf("Wait returned rev %d, want 3", rev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher never woke")
	}

	// Copies are deep: mutating a returned object must not leak into the store.
	got, _ := st.Get(rr.ID)
	got.Spec.Nodes[0] = 99
	got.Status.Phase = PhaseFailed
	again, _ := st.Get(rr.ID)
	if again.Spec.Nodes[0] != 2 || again.Status.Phase == PhaseFailed {
		t.Fatalf("store leaked a mutable reference: %+v", again)
	}

	if n := len(st.List("a")); n != 2 {
		t.Fatalf("List(a) = %d items, want 2", n)
	}
	if n := len(st.List("b")); n != 0 {
		t.Fatalf("List(b) = %d items, want 0", n)
	}
}

func TestAdmissionQuota(t *testing.T) {
	st := NewStore()
	adm := NewAdmission(map[string]Quota{"small": {MaxActive: 2}}, 0)

	spec := Spec{Tenant: "small"}
	for i := 0; i < 2; i++ {
		if err := adm.Admit(st, KindCheckpoint, spec); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		st.Create(KindCheckpoint, spec)
	}
	err := adm.Admit(st, KindCheckpoint, spec)
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("over-quota admit = %v, want *QuotaError", err)
	}
	if qe.Tenant != "small" || qe.Limit != 2 || qe.Active != 2 {
		t.Fatalf("quota error = %+v", qe)
	}

	// Unnamed tenants get the default cap.
	if got := adm.QuotaFor("other").MaxActive; got != DefaultMaxActive {
		t.Fatalf("default quota = %d, want %d", got, DefaultMaxActive)
	}

	// A terminal request frees its quota slot.
	reqs := st.List("small")
	st.UpdateStatus(reqs[0].ID, func(now time.Time, r *Request) { r.Status.Phase = PhaseSucceeded })
	if err := adm.Admit(st, KindCheckpoint, spec); err != nil {
		t.Fatalf("admit after completion: %v", err)
	}
}

// startService builds a Service over exec with fast backoff and starts it.
func startService(t *testing.T, exec Executor, opts Options) *Service {
	t.Helper()
	if opts.Backoff == 0 {
		opts.Backoff = 2 * time.Millisecond
	}
	svc := New(exec, opts)
	svc.Start()
	t.Cleanup(svc.Stop)
	return svc
}

func TestReconcilerConverges(t *testing.T) {
	exec := &fakeExec{}
	reg := obs.NewRegistry()
	svc := startService(t, exec, Options{Registry: reg})

	req, err := svc.Submit(KindCheckpoint, Spec{Tenant: "a", Steps: 7})
	if err != nil {
		t.Fatal(err)
	}
	final, err := svc.WaitTerminal(req.ID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status.Phase != PhaseSucceeded {
		t.Fatalf("phase = %s, want Succeeded (%s)", final.Status.Phase, final.Status.Message)
	}
	if final.Status.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", final.Status.Epoch)
	}
	if final.Status.ObservedGeneration != final.Generation {
		t.Fatalf("observed generation %d != generation %d", final.Status.ObservedGeneration, final.Generation)
	}
	for _, cond := range []string{CondAdmitted, CondScheduled, CondExecuting, CondComplete} {
		found := false
		for _, c := range final.Status.Conditions {
			if c.Type == cond && c.Status {
				found = true
			}
		}
		if !found {
			t.Errorf("missing true condition %s in %+v", cond, final.Status.Conditions)
		}
	}
	if got := reg.Counter("dvdc_service_requests_total", "tenant", "a", "kind", "Checkpoint").Value(); got != 1 {
		t.Errorf("requests_total = %d, want 1", got)
	}
	if got := reg.Counter("dvdc_service_reconciles_total", "result", "succeeded", "kind", "Checkpoint").Value(); got != 1 {
		t.Errorf("reconciles_total{succeeded} = %d, want 1", got)
	}
}

func TestReconcilerRetriesThenSucceeds(t *testing.T) {
	exec := &fakeExec{failures: 2}
	reg := obs.NewRegistry()
	svc := startService(t, exec, Options{Registry: reg})

	req, _ := svc.Submit(KindCheckpoint, Spec{Tenant: "a"})
	final, err := svc.WaitTerminal(req.ID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status.Phase != PhaseSucceeded || final.Status.Retries != 2 {
		t.Fatalf("phase = %s retries = %d, want Succeeded after 2 retries", final.Status.Phase, final.Status.Retries)
	}
	if got := reg.Counter("dvdc_service_retries_total", "tenant", "a").Value(); got != 2 {
		t.Errorf("retries_total = %d, want 2", got)
	}
}

func TestReconcilerExhaustsRetries(t *testing.T) {
	exec := &fakeExec{failures: 1 << 30}
	svc := startService(t, exec, Options{MaxRetries: 3})

	req, _ := svc.Submit(KindCheckpoint, Spec{Tenant: "a"})
	final, err := svc.WaitTerminal(req.ID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status.Phase != PhaseFailed {
		t.Fatalf("phase = %s, want Failed", final.Status.Phase)
	}
	if exec.snapshot().checkpoints != 3 {
		t.Fatalf("attempts = %d, want 3", exec.snapshot().checkpoints)
	}
}

func TestReconcilerRecoversCasualtiesInline(t *testing.T) {
	exec := &fakeExec{casualtyOn: 1, casualties: []int{2, 3}}
	svc := startService(t, exec, Options{})

	req, _ := svc.Submit(KindCheckpoint, Spec{Tenant: "a"})
	final, err := svc.WaitTerminal(req.ID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status.Phase != PhaseSucceeded {
		t.Fatalf("phase = %s (%s), want Succeeded", final.Status.Phase, final.Status.Message)
	}
	if len(final.Status.Casualties) != 2 || final.Status.Casualties[0] != 2 {
		t.Fatalf("casualties = %v, want [2 3]", final.Status.Casualties)
	}
	snap := exec.snapshot()
	if len(snap.restores) != 1 || len(snap.restores[0]) != 2 {
		t.Fatalf("restores = %v, want one over [2 3]", snap.restores)
	}
	found := false
	for _, c := range final.Status.Conditions {
		if c.Type == CondRecovered && c.Status {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing Recovered condition: %+v", final.Status.Conditions)
	}
}

func TestReconcilerFailsWhenRecoveryFails(t *testing.T) {
	exec := &fakeExec{casualtyOn: 1, casualties: []int{1}, restoreErr: errors.New("keeper gone")}
	svc := startService(t, exec, Options{})

	req, _ := svc.Submit(KindCheckpoint, Spec{Tenant: "a"})
	final, err := svc.WaitTerminal(req.ID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status.Phase != PhaseFailed {
		t.Fatalf("phase = %s, want Failed", final.Status.Phase)
	}
	if len(final.Status.Casualties) != 1 || final.Status.Casualties[0] != 1 {
		t.Fatalf("casualties = %v, want [1]", final.Status.Casualties)
	}
}

func TestReconcilerPriorityOrder(t *testing.T) {
	// Submit before starting the loop so both are queued when it first picks.
	exec := &fakeExec{}
	svc := New(exec, Options{Backoff: 2 * time.Millisecond})
	low, _ := svc.Submit(KindCheckpoint, Spec{Tenant: "a", Priority: 0, Steps: 1})
	high, _ := svc.Submit(KindCheckpoint, Spec{Tenant: "a", Priority: 5, Steps: 2})
	svc.Start()
	defer svc.Stop()

	if _, err := svc.WaitTerminal(low.ID, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.WaitTerminal(high.ID, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	order := exec.snapshot().order
	if len(order) != 2 || order[0] != "ckpt-2" || order[1] != "ckpt-1" {
		t.Fatalf("execution order = %v, want high priority (steps=2) first", order)
	}

	hi, _ := svc.Store.Get(high.ID)
	lo, _ := svc.Store.Get(low.ID)
	if hi.Status.Epoch != 1 || lo.Status.Epoch != 2 {
		t.Fatalf("epochs: high=%d low=%d, want 1 and 2", hi.Status.Epoch, lo.Status.Epoch)
	}
}

func TestStopQuiescesExecutor(t *testing.T) {
	exec := &fakeExec{}
	svc := New(exec, Options{})
	svc.Start()
	svc.Stop()
	if exec.snapshot().quiesced != 1 {
		t.Fatalf("quiesced = %d, want 1", exec.snapshot().quiesced)
	}
	// Stop is idempotent.
	svc.Stop()
}

func TestHTTPAPIRoundTrip(t *testing.T) {
	exec := &fakeExec{}
	svc := startService(t, exec, Options{Quotas: map[string]Quota{"small": {MaxActive: 1}}})

	mux := http.NewServeMux()
	svc.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	cl := NewClient(srv.URL)

	// Submit + watch to terminal over the wire.
	req, err := cl.Submit(KindCheckpoint, Spec{Tenant: "a", Steps: 3})
	if err != nil {
		t.Fatal(err)
	}
	var phases []Phase
	final, err := cl.Watch(req.ID, 5*time.Second, func(r *Request) {
		phases = append(phases, r.Status.Phase)
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.Status.Phase != PhaseSucceeded || final.Status.Epoch != 1 {
		t.Fatalf("watched final = %+v", final.Status)
	}
	if len(phases) == 0 || phases[len(phases)-1] != PhaseSucceeded {
		t.Fatalf("observed phases = %v, want trailing Succeeded", phases)
	}

	// Get and List agree.
	got, err := cl.Get(req.ID)
	if err != nil || got.Status.Phase != PhaseSucceeded {
		t.Fatalf("Get = %+v, %v", got, err)
	}
	items, err := cl.List("a")
	if err != nil || len(items) != 1 {
		t.Fatalf("List = %d items, %v", len(items), err)
	}

	// Validation errors are 400s with a message, not QuotaErrors.
	if _, err := cl.Submit(KindCheckpoint, Spec{}); err == nil {
		t.Fatal("submit with no tenant succeeded")
	} else if qe := new(QuotaError); errors.As(err, &qe) {
		t.Fatalf("validation error surfaced as quota error: %v", err)
	}

	// Unknown ids are 404s.
	if _, err := cl.Get("cr-999"); err == nil {
		t.Fatal("Get of unknown id succeeded")
	}
}

func TestHTTPAPIQuotaRejection(t *testing.T) {
	// A blocking executor holds tenant "small"'s single slot so the second
	// submission deterministically trips the quota.
	release := make(chan struct{})
	exec := &gatedExec{gate: release}
	svc := startService(t, exec, Options{Quotas: map[string]Quota{"small": {MaxActive: 1}}})

	mux := http.NewServeMux()
	svc.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	cl := NewClient(srv.URL)

	first, err := cl.Submit(KindCheckpoint, Spec{Tenant: "small"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Submit(KindCheckpoint, Spec{Tenant: "small"})
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("second submit = %v, want *QuotaError over the wire", err)
	}
	if qe.Tenant != "small" || qe.Limit != 1 {
		t.Fatalf("wire quota error = %+v", qe)
	}

	// Quotas endpoint reflects the live usage.
	tenants, def, err := cl.Quotas()
	if err != nil {
		t.Fatal(err)
	}
	if def != DefaultMaxActive {
		t.Fatalf("default quota = %d, want %d", def, DefaultMaxActive)
	}
	if q := tenants["small"]; q.Limit != 1 || q.Active != 1 {
		t.Fatalf("small quota status = %+v, want limit 1 active 1", q)
	}

	close(release)
	if _, err := cl.Watch(first.ID, 5*time.Second, nil); err != nil {
		t.Fatal(err)
	}
	// Slot freed: the tenant can submit again.
	if _, err := cl.Submit(KindCheckpoint, Spec{Tenant: "small"}); err != nil {
		t.Fatalf("submit after completion: %v", err)
	}
}

// gatedExec blocks every checkpoint until its gate closes.
type gatedExec struct{ gate chan struct{} }

func (g *gatedExec) ExecuteCheckpoint(_ obs.SpanContext, _ uint64) (uint64, error) {
	<-g.gate
	return 1, nil
}

func (g *gatedExec) ExecuteRestore(_ obs.SpanContext, _ []int) (uint64, error) { return 1, nil }

func TestReconcileSpansEmitted(t *testing.T) {
	tr := obs.NewTracer(64)
	exec := &fakeExec{}
	svc := startService(t, exec, Options{Tracer: tr})

	req, _ := svc.Submit(KindCheckpoint, Spec{Tenant: "a"})
	if _, err := svc.WaitTerminal(req.ID, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	svc.Stop()
	found := false
	for _, sp := range tr.Spans() {
		if sp.Name == "reconcile" && sp.Attrs["request"] == req.ID && sp.Attrs["outcome"] == "succeeded" {
			found = true
		}
	}
	if !found {
		t.Fatal("no finished reconcile span for the request")
	}
}
