package cli

import (
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dvdc/internal/obs"
)

// TestCommonFlagRegistration pins the shared spellings and defaults: every
// binary that registers these flags through Common gets exactly these names,
// so a script written against one binary's flags works against them all.
func TestCommonFlagRegistration(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var c Common
	c.ObsAddrFlag(fs)
	c.RPCTimeoutFlag(fs, 5*time.Second)
	c.FanoutFlag(fs)
	c.PostmortemFlag(fs, "on SIGQUIT")
	c.RoundIntervalFlag(fs)
	c.TraceJSONLFlag(fs)

	for name, def := range map[string]string{
		"obs-addr":       "",
		"rpc-timeout":    "5s",
		"fanout":         "0",
		"postmortem-dir": "",
		"round-interval": "0s",
		"trace-jsonl":    "",
	} {
		f := fs.Lookup(name)
		if f == nil {
			t.Fatalf("flag -%s not registered", name)
		}
		if f.DefValue != def {
			t.Errorf("-%s default = %q, want %q", name, f.DefValue, def)
		}
	}
	if !strings.Contains(fs.Lookup("postmortem-dir").Usage, "on SIGQUIT") {
		t.Errorf("postmortem usage lost its trigger: %q", fs.Lookup("postmortem-dir").Usage)
	}

	err := fs.Parse([]string{
		"-obs-addr", "127.0.0.1:0", "-rpc-timeout", "2s", "-fanout", "8",
		"-postmortem-dir", "/tmp/pm", "-round-interval", "50ms", "-trace-jsonl", "x.jsonl",
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.ObsAddr != "127.0.0.1:0" || c.RPCTimeout != 2*time.Second || c.Fanout != 8 ||
		c.PostmortemDir != "/tmp/pm" || c.RoundInterval != 50*time.Millisecond || c.TraceJSONL != "x.jsonl" {
		t.Errorf("parsed values landed wrong: %+v", c)
	}
	if !c.WantTracer() {
		t.Error("WantTracer = false with -obs-addr and -trace-jsonl both set")
	}
}

// TestServeObsDiscoveryAndMounts starts a real endpoint: the canonical "obs
// listening on" line must land on stderr (scripts parse it to learn a
// kernel-assigned port), and a mount must answer on the same mux as /metrics.
func TestServeObsDiscoveryAndMounts(t *testing.T) {
	c := Common{ObsAddr: "127.0.0.1:0"}
	reg := obs.NewRegistry()

	outR, outW, _ := os.Pipe()
	errR, errW, _ := os.Pipe()
	oldOut, oldErr := os.Stdout, os.Stderr
	os.Stdout, os.Stderr = outW, errW
	srv, err := c.ServeObs("testbin", reg, nil, func(mux *http.ServeMux) {
		mux.HandleFunc("/api/ping", func(w http.ResponseWriter, _ *http.Request) {
			io.WriteString(w, "pong") //nolint:errcheck
		})
	})
	os.Stdout, os.Stderr = oldOut, oldErr
	outW.Close()
	errW.Close()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stdout, _ := io.ReadAll(outR)
	stderr, _ := io.ReadAll(errR)
	if !strings.Contains(string(stdout), "testbin observability on http://"+srv.Addr()+"/metrics") {
		t.Errorf("stdout missing discovery URL: %q", stdout)
	}
	if !strings.Contains(string(stderr), "obs listening on "+srv.Addr()) {
		t.Errorf("stderr missing canonical discovery line: %q", stderr)
	}

	for path, want := range map[string]string{"/api/ping": "pong", "/healthz": "ok"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(body), want) {
			t.Errorf("GET %s = %q, want %q", path, body, want)
		}
	}

	// Unset flag: no server, no error.
	if srv, err := (&Common{}).ServeObs("testbin", reg, nil); srv != nil || err != nil {
		t.Errorf("ServeObs without -obs-addr = (%v, %v), want (nil, nil)", srv, err)
	}
}

// TestOpenTraceSinkAndRecorder covers the remaining bootstrap helpers: the
// JSONL sink receives finished spans and the closer flushes them; Recorder
// wires dump dir, registry, and tracer tap.
func TestOpenTraceSinkAndRecorder(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spans.jsonl")
	c := Common{TraceJSONL: path, PostmortemDir: dir}
	tr := obs.NewTracer(16)
	closeSink, err := c.OpenTraceSink(tr)
	if err != nil {
		t.Fatal(err)
	}
	rec := c.Recorder(obs.NewRegistry(), tr)
	if rec == nil {
		t.Fatal("Recorder = nil with -postmortem-dir set")
	}

	sp := tr.Start(obs.SpanContext{}, "unit", "test")
	sp.Finish()
	closeSink()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"unit"`) {
		t.Errorf("sink file missing span: %q", data)
	}

	// Unset flags are no-ops.
	var empty Common
	if closer, err := empty.OpenTraceSink(tr); err != nil || closer == nil {
		t.Errorf("OpenTraceSink on empty Common: closer nil=%v, err=%v", closer == nil, err)
	}
	if rec := empty.Recorder(nil, nil); rec != nil {
		t.Error("Recorder on empty Common should be nil")
	}
}
