// Package cli holds the flag spellings and observability bootstrap shared by
// the dvdc binaries. Every binary that exposes -obs-addr, -rpc-timeout,
// -postmortem-dir, -round-interval, -trace-jsonl, or -fanout registers it
// through Common, so the spelling, help text, and wiring exist exactly once
// and scripts written against one binary's flags work against them all.
package cli

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dvdc/internal/obs"
	"dvdc/internal/obs/health"
)

// Common holds the values of the shared flags. Each binary registers only
// the subset it supports (a daemon has no -round-interval; the simulator has
// no -rpc-timeout), then reads the fields after flag.Parse.
type Common struct {
	ObsAddr       string
	RPCTimeout    time.Duration
	Fanout        int
	PostmortemDir string
	RoundInterval time.Duration
	TraceJSONL    string
	Health        bool
}

// ObsAddrFlag registers -obs-addr.
func (c *Common) ObsAddrFlag(fs *flag.FlagSet) {
	fs.StringVar(&c.ObsAddr, "obs-addr", "",
		"serve /metrics, /healthz, /spans and pprof here (empty = disabled)")
}

// RPCTimeoutFlag registers -rpc-timeout with the binary's default deadline
// (pass the matching runtime default so help text and behavior agree).
func (c *Common) RPCTimeoutFlag(fs *flag.FlagSet, def time.Duration) {
	fs.DurationVar(&c.RPCTimeout, "rpc-timeout", def, "per-RPC deadline")
}

// FanoutFlag registers -fanout.
func (c *Common) FanoutFlag(fs *flag.FlagSet) {
	fs.IntVar(&c.Fanout, "fanout", 0, "max concurrent fan-out RPCs (0 = runtime default)")
}

// PostmortemFlag registers -postmortem-dir; trigger names the event that
// dumps a bundle there (e.g. "on partial commit", "on SIGQUIT").
func (c *Common) PostmortemFlag(fs *flag.FlagSet, trigger string) {
	fs.StringVar(&c.PostmortemDir, "postmortem-dir", "",
		"dump a flight-recorder bundle here "+trigger+" (empty = disabled)")
}

// RoundIntervalFlag registers -round-interval.
func (c *Common) RoundIntervalFlag(fs *flag.FlagSet) {
	fs.DurationVar(&c.RoundInterval, "round-interval", 0,
		"sleep between rounds (lets dvdcctl top watch a live session)")
}

// TraceJSONLFlag registers -trace-jsonl.
func (c *Common) TraceJSONLFlag(fs *flag.FlagSet) {
	fs.StringVar(&c.TraceJSONL, "trace-jsonl", "",
		"stream every span to this JSONL file (render with dvdcctl trace)")
}

// HealthFlag registers -health.
func (c *Common) HealthFlag(fs *flag.FlagSet) {
	fs.BoolVar(&c.Health, "health", false,
		"run the SLO health engine: burn-rate alerts on /api/v1/health and /healthz?verbose=1, dvdc_slo_*/dvdc_alert_* metrics")
}

// StartHealth builds and starts the background health evaluator -health asks
// for, with the default cluster SLO rules installed, and returns it together
// with the mux mount serving /api/v1/health (pass it to ServeObs). Returns
// (nil, nil) when the flag is unset; callers Stop the evaluator on shutdown
// (a nil evaluator's Stop is a no-op).
func (c *Common) StartHealth(reg *obs.Registry, rec *obs.FlightRecorder) (*health.Evaluator, obs.Mount) {
	if !c.Health || reg == nil {
		return nil, nil
	}
	ev := health.New(health.Options{Registry: reg, Recorder: rec})
	health.InstallDefaultRules(ev, reg, health.Objectives{})
	ev.Start()
	return ev, ev.Mount()
}

// WantTracer reports whether any parsed flag needs a tracer built.
func (c *Common) WantTracer() bool { return c.ObsAddr != "" || c.TraceJSONL != "" }

// OpenTraceSink attaches the -trace-jsonl sink to tr and returns a closer
// that flushes the tracer and closes the file. With the flag unset (or tr
// nil) it is a no-op returning a harmless closer.
func (c *Common) OpenTraceSink(tr *obs.Tracer) (func(), error) {
	if c.TraceJSONL == "" || tr == nil {
		return func() {}, nil
	}
	f, err := os.Create(c.TraceJSONL)
	if err != nil {
		return nil, err
	}
	tr.SetSink(f)
	return func() {
		tr.Flush() //nolint:errcheck // sink errors surface via SinkErr
		f.Close()
	}, nil
}

// ServeObs starts the observability endpoint when -obs-addr was given and
// prints the canonical discovery lines: the human-facing URL on stdout
// (prefixed with the binary name) and the "obs listening on <addr>" line on
// stderr that scripts and the smoke tests parse — with -obs-addr :0 the
// kernel assigns the port and this line is how callers learn it. mounts
// attach extra handler sets (e.g. the service API) to the same mux. Returns
// (nil, nil) when the flag is unset.
func (c *Common) ServeObs(name string, reg *obs.Registry, tr *obs.Tracer, mounts ...obs.Mount) (*obs.Server, error) {
	if c.ObsAddr == "" {
		return nil, nil
	}
	// Every binary serving an obs endpoint reports its own Go runtime:
	// goroutine count, heap bytes, GC pauses.
	obs.MountGoRuntime(reg)
	srv, err := obs.Serve(c.ObsAddr, reg, tr, mounts...)
	if err != nil {
		return nil, err
	}
	fmt.Printf("%s observability on http://%s/metrics\n", name, srv.Addr())
	fmt.Fprintf(os.Stderr, "obs listening on %s\n", srv.Addr())
	return srv, nil
}

// Recorder builds the flight recorder -postmortem-dir asks for, wired to the
// registry and tapping the tracer when one exists. Returns nil when the flag
// is unset; callers attach run-specific metadata themselves.
func (c *Common) Recorder(reg *obs.Registry, tr *obs.Tracer) *obs.FlightRecorder {
	if c.PostmortemDir == "" {
		return nil
	}
	rec := obs.NewFlightRecorder(0)
	rec.SetDumpDir(c.PostmortemDir)
	rec.SetRegistry(reg)
	if tr != nil {
		tr.SetTap(rec.Span)
	}
	return rec
}
