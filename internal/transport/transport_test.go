package transport

import (
	"fmt"
	"sync"
	"testing"

	"dvdc/internal/wire"
)

func echoServer(t *testing.T) *Server {
	t.Helper()
	s, err := Listen("127.0.0.1:0", func(req *wire.Message) (*wire.Message, error) {
		switch req.Type {
		case wire.MsgHello:
			return &wire.Message{Type: wire.MsgHelloOK, Epoch: req.Epoch, Payload: req.Payload}, nil
		case wire.MsgStep:
			return nil, fmt.Errorf("step not supported here")
		default:
			return &wire.Message{Type: req.Type, VM: req.VM}, nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestCallRoundTrip(t *testing.T) {
	s := echoServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(&wire.Message{Type: wire.MsgHello, Epoch: 9, Payload: []byte("hi")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != wire.MsgHelloOK || resp.Epoch != 9 || string(resp.Payload) != "hi" {
		t.Errorf("resp: %+v", resp)
	}
}

func TestHandlerErrorBecomesRemoteError(t *testing.T) {
	s := echoServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(&wire.Message{Type: wire.MsgStep}); err == nil {
		t.Error("expected remote error")
	}
	// The connection must survive an error reply.
	if _, err := c.Call(&wire.Message{Type: wire.MsgHello}); err != nil {
		t.Errorf("connection dead after error reply: %v", err)
	}
}

func TestConcurrentCallsSerialize(t *testing.T) {
	s := echoServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.Call(&wire.Message{Type: wire.MsgHello, Epoch: uint64(i)})
			if err != nil {
				errs <- err
				return
			}
			if resp.Epoch != uint64(i) {
				errs <- fmt.Errorf("epoch %d != %d", resp.Epoch, i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestMultipleClients(t *testing.T) {
	s := echoServer(t)
	for i := 0; i < 8; i++ {
		c, err := Dial(s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Call(&wire.Message{Type: wire.MsgHello}); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port should fail")
	}
}

func TestListenNilHandler(t *testing.T) {
	if _, err := Listen("127.0.0.1:0", nil); err == nil {
		t.Error("nil handler should fail")
	}
}

func TestServerCloseTerminatesClients(t *testing.T) {
	s := echoServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(&wire.Message{Type: wire.MsgHello}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := c.Call(&wire.Message{Type: wire.MsgHello}); err == nil {
		t.Error("call after server close should fail")
	}
}

func TestLargePayload(t *testing.T) {
	s := echoServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := make([]byte, 8<<20)
	for i := range big {
		big[i] = byte(i)
	}
	resp, err := c.Call(&wire.Message{Type: wire.MsgHello, Payload: big})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Payload) != len(big) {
		t.Errorf("payload %d, want %d", len(resp.Payload), len(big))
	}
}
