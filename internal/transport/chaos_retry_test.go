package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dvdc/internal/chaos"
	"dvdc/internal/wire"
)

// These are the regression tests for two chaos-found bug classes in the
// pool's retry path (see DESIGN.md, "Fault model & chaos testing"):
//
//  1. A corrupted frame on a *fresh* connection was classified as a caller
//     error and never retried, although the connection — not the request —
//     failed the call.
//  2. Stale-connection failures consumed the single retry budget, so a call
//     issued right after a peer restart died on the second of several stale
//     pooled connections instead of draining them and re-dialing.

// TestPoolRetriesChaosCorruptedRequest corrupts the first request frame a
// brand-new pool sends. The server rejects the mangled frame by dropping the
// connection, the client sees an abrupt close on a fresh conn, and the call
// must still succeed via one clean retry.
func TestPoolRetriesChaosCorruptedRequest(t *testing.T) {
	s := echoServer(t)
	inj := chaos.New(11, chaos.Config{})
	inj.Register(1, s.Addr())
	inj.NextRound()
	inj.Arm(chaos.Pair{Src: 0, Dst: 1}, chaos.Corrupt)

	p := NewPool(s.Addr(), PoolOptions{Dialer: inj.Dialer(0), CallTimeout: 2 * time.Second})
	defer p.Close()
	resp, err := p.Call(&wire.Message{Type: wire.MsgHello, Epoch: 3})
	if err != nil {
		t.Fatalf("call through corrupted request frame: %v", err)
	}
	if resp.Epoch != 3 {
		t.Errorf("echoed epoch = %d, want 3", resp.Epoch)
	}
	if got := p.Retries(); got < 1 {
		t.Errorf("pool retries = %d, want >= 1 (the corrupted attempt)", got)
	}
	if fired := inj.Fired(1, chaos.Corrupt); fired != 1 {
		t.Errorf("corrupt faults fired = %d, want 1", fired)
	}
}

// TestPoolRetriesChaosCorruptedResponse corrupts the first *response* frame
// instead: the client hits a typed wire decode error on a fresh connection
// and must retry. The handler runs twice — callers of Pool.Call must keep
// their request handlers idempotent, which the protocol layer does.
func TestPoolRetriesChaosCorruptedResponse(t *testing.T) {
	inj := chaos.New(12, chaos.Config{})
	var calls atomic.Int64
	s, err := ListenWith("127.0.0.1:0", func(req *wire.Message) (*wire.Message, error) {
		calls.Add(1)
		return &wire.Message{Type: wire.MsgHelloOK, Epoch: req.Epoch}, nil
	}, inj.ListenFunc(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	inj.NextRound()
	inj.Arm(chaos.Pair{Src: 1, Dst: chaos.UnknownPeer}, chaos.Corrupt)

	p := NewPool(s.Addr(), PoolOptions{CallTimeout: 2 * time.Second})
	defer p.Close()
	resp, err := p.Call(&wire.Message{Type: wire.MsgHello, Epoch: 5})
	if err != nil {
		t.Fatalf("call through corrupted response frame: %v", err)
	}
	if resp.Epoch != 5 {
		t.Errorf("echoed epoch = %d, want 5", resp.Epoch)
	}
	if got := p.Retries(); got < 1 {
		t.Errorf("pool retries = %d, want >= 1", got)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("handler ran %d times, want 2 (original + retry)", got)
	}
}

// TestPoolDrainsStaleConnsAfterPeerRestart fills the pool with several idle
// connections, restarts the peer on the same address (invalidating all of
// them), and checks a single call drains every stale connection and succeeds
// over a fresh dial — instead of dying on the second stale one.
func TestPoolDrainsStaleConnsAfterPeerRestart(t *testing.T) {
	const parallel = 3
	var inFlight atomic.Int64
	release := make(chan struct{})
	blockingHandler := func(req *wire.Message) (*wire.Message, error) {
		if req.Type == wire.MsgHello {
			inFlight.Add(1)
			<-release
		}
		return &wire.Message{Type: wire.MsgHelloOK, Epoch: req.Epoch}, nil
	}
	s, err := Listen("127.0.0.1:0", blockingHandler)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	p := NewPool(addr, PoolOptions{Size: parallel + 1, CallTimeout: 5 * time.Second})
	defer p.Close()

	// Force `parallel` distinct connections by holding that many calls open
	// inside the handler at once, then release them all back to the idle list.
	var wg sync.WaitGroup
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Call(&wire.Message{Type: wire.MsgHello}); err != nil {
				t.Errorf("warm-up call: %v", err)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for inFlight.Load() < parallel {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d calls in flight", inFlight.Load(), parallel)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	// Peer restart: every idle connection in the pool is now stale.
	s.Close()
	s2, err := Listen(addr, blockingHandler)
	if err != nil {
		t.Fatalf("restart server on %s: %v", addr, err)
	}
	t.Cleanup(func() { s2.Close() })

	resp, err := p.Call(&wire.Message{Type: wire.MsgStep, Epoch: 9})
	if err != nil {
		t.Fatalf("call after peer restart: %v", err)
	}
	if resp.Epoch != 9 {
		t.Errorf("echoed epoch = %d, want 9", resp.Epoch)
	}
	if got := p.Retries(); got < parallel {
		t.Errorf("pool retries = %d, want >= %d (all stale conns drained)", got, parallel)
	}
}
