// Package transport carries wire.Messages over TCP: a framed connection
// with single-in-flight request/response semantics, a per-peer connection
// pool for concurrent fan-out, and a server that runs one handler goroutine
// per accepted connection. The distributed DVDC runtime's coordinator-to-node
// and node-to-node traffic all rides on it.
package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dvdc/internal/bufpool"
	"dvdc/internal/wire"
)

// Conn is a framed connection. Call is safe for concurrent use; each call
// holds the connection for one request/response exchange.
type Conn struct {
	mu      sync.Mutex
	c       net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	timeout time.Duration
}

// DialFunc opens the raw stream a framed connection runs over. nil means
// plain TCP (net.DialTimeout). Hooks — fault injection (internal/chaos),
// instrumented dials — substitute their own.
type DialFunc func(addr string, timeout time.Duration) (net.Conn, error)

// ListenFunc opens the listener a Server accepts on. nil means plain TCP
// (net.Listen). Hooks wrap the returned listener to intercept accepted
// connections.
type ListenFunc func(addr string) (net.Listener, error)

// Dial connects to a runtime endpoint with the default 5s dial timeout.
func Dial(addr string) (*Conn, error) {
	return DialTimeout(addr, 5*time.Second)
}

// DialTimeout connects to a runtime endpoint, bounding the dial.
func DialTimeout(addr string, d time.Duration) (*Conn, error) {
	return DialWith(addr, d, nil)
}

// DialWith connects to a runtime endpoint over dial (nil = TCP), bounding
// the attempt.
func DialWith(addr string, d time.Duration, dial DialFunc) (*Conn, error) {
	if d <= 0 {
		d = 5 * time.Second
	}
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	c, err := dial(addr, d)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return newConn(c), nil
}

func newConn(c net.Conn) *Conn {
	return &Conn{c: c, r: bufio.NewReaderSize(c, 1<<16), w: bufio.NewWriterSize(c, 1<<16)}
}

// SetTimeout sets the per-call I/O deadline for subsequent Calls (0 disables
// it). A call that trips the deadline leaves the stream desynchronized — the
// reply may still be in flight — so the connection must be closed, not
// reused; Pool handles that automatically.
func (c *Conn) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// Call sends a request and waits for its reply, bounded by the configured
// per-call timeout. A reply of type MsgError is converted into a
// *wire.RemoteError.
func (c *Conn) Call(req *wire.Message) (*wire.Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.timeout > 0 {
		c.c.SetDeadline(time.Now().Add(c.timeout)) //nolint:errcheck
		defer c.c.SetDeadline(time.Time{})         //nolint:errcheck
	}
	if err := wire.WriteFrame(c.w, req); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	resp, err := wire.ReadFrame(c.r)
	if err != nil {
		return nil, err
	}
	if err := resp.AsError(); err != nil {
		return nil, err
	}
	return resp, nil
}

// Close shuts the connection down.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() string { return c.c.RemoteAddr().String() }

// Handler serves one request and returns the reply. Returning an error
// sends a MsgError reply and keeps the connection open.
type Handler func(req *wire.Message) (*wire.Message, error)

// Server accepts framed connections and dispatches requests to a Handler.
type Server struct {
	ln      net.Listener
	handler Handler
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	done    chan struct{}
	closing sync.Once
	wg      sync.WaitGroup
}

// Listen starts a server on addr ("127.0.0.1:0" picks a free port).
func Listen(addr string, h Handler) (*Server, error) {
	return ListenWith(addr, h, nil)
}

// ListenWith starts a server on a listener opened by lf (nil = TCP). Fault
// injection layers use it to wrap every accepted connection.
func ListenWith(addr string, h Handler, lf ListenFunc) (*Server, error) {
	if h == nil {
		return nil, fmt.Errorf("transport: nil handler")
	}
	if lf == nil {
		lf = func(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }
	}
	ln, err := lf(addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, handler: h, conns: map[net.Conn]struct{}{}, done: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Accept-error backoff: start at acceptBackoffMin, double up to
// acceptBackoffMax, and give up after maxAcceptFailures consecutive errors —
// a listener that fails that long (fd exhaustion that never clears, a
// revoked socket) is permanently broken and spinning on it helps nobody.
// Vars, not consts, so tests can shrink the schedule.
var (
	acceptBackoffMin  = 10 * time.Millisecond
	acceptBackoffMax  = time.Second
	maxAcceptFailures = 12
)

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	backoff := acceptBackoffMin
	failures := 0
	for {
		c, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return // listener closed out from under us: nothing to retry
			}
			failures++
			if failures >= maxAcceptFailures {
				return // persistently broken listener: stop cleanly
			}
			select {
			case <-s.done:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			continue
		}
		failures, backoff = 0, acceptBackoffMin
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

func (s *Server) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	r := bufio.NewReaderSize(c, 1<<16)
	w := bufio.NewWriterSize(c, 1<<16)
	for {
		req, err := wire.ReadFrame(r)
		if err != nil {
			return // connection closed or corrupted; drop it
		}
		resp, herr := s.handler(req)
		if herr != nil {
			resp = wire.Errorf("%v", herr)
		}
		if resp == nil {
			resp = wire.Errorf("transport: handler returned no reply for %v", req.Type)
		}
		// Replies carry the request's trace context back so fault injection on
		// the return path can still be pinned to the originating RPC span.
		if resp.Trace == 0 {
			resp.Trace, resp.Span = req.Trace, req.Span
		}
		if err := wire.WriteFrame(w, resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		// The request payload came out of the buffer pool (wire.ReadFrame) and
		// the exchange is over, so it can be recycled. Handler contract: do not
		// retain the request payload past the reply being written — aliasing it
		// in the reply itself is fine, since the reply is already on the wire.
		bufpool.Put(req.Payload)
		req.Payload = nil
	}
}

// Close stops accepting, closes all connections, and waits for handlers.
// It is idempotent.
func (s *Server) Close() error {
	var err error
	s.closing.Do(func() {
		close(s.done)
		err = s.ln.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
	})
	return err
}
