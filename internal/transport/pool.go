package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dvdc/internal/obs"
	"dvdc/internal/wire"
)

// PoolOptions tunes a per-peer connection pool. The zero value picks sane
// defaults: 4 connections, 5s dials, one re-dial with 25ms backoff, and no
// per-call deadline.
type PoolOptions struct {
	Size        int           // max concurrent connections to the peer (default 4)
	CallTimeout time.Duration // per-call I/O deadline (0 = none)
	DialTimeout time.Duration // per-dial bound (default 5s)
	DialRetries int           // extra dial attempts after the first (default 1)
	Backoff     time.Duration // base backoff between dial attempts, doubled each retry (default 25ms)
	Dialer      DialFunc      // raw stream opener (nil = TCP); fault-injection hook

	// Observability (all optional). Peer labels this pool's metric series and
	// RPC spans (defaults to the dialed address); Tracer opens a child span
	// per call attempt on traced requests; Registry gets the pool's health
	// counters and a per-peer RPC latency histogram; Recorder gets one flight
	// entry per call attempt (the black box's RPC-outcome feed).
	Peer     string
	Tracer   *obs.Tracer
	Registry *obs.Registry
	Recorder *obs.FlightRecorder
}

func (o PoolOptions) withDefaults() PoolOptions {
	if o.Size <= 0 {
		o.Size = 4
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.DialRetries < 0 {
		o.DialRetries = 0
	} else if o.DialRetries == 0 {
		o.DialRetries = 1
	}
	if o.Backoff <= 0 {
		o.Backoff = 25 * time.Millisecond
	}
	return o
}

// Pool is a bounded pool of framed connections to one peer, so that
// concurrent fan-out is not serialized on a single in-flight socket.
// Connections are dialed lazily, reused when idle, and discarded on
// transport failure; a call that lands on stale cached connections (the
// peer restarted) drains them and is retried over a fresh dial. Calls
// beyond Size queue for a free connection slot. Safe for concurrent use.
type Pool struct {
	addr    string
	opts    PoolOptions
	slots   chan struct{}
	retries atomic.Int64

	dials       atomic.Int64
	reuses      atomic.Int64
	staleDrains atomic.Int64
	openConns   atomic.Int64
	latency     *obs.Histogram

	mu     sync.Mutex
	idle   []*Conn
	closed bool
}

// NewPool builds a pool for one peer address. Nothing is dialed until the
// first Call.
func NewPool(addr string, opts PoolOptions) *Pool {
	opts = opts.withDefaults()
	if opts.Peer == "" {
		opts.Peer = addr
	}
	p := &Pool{
		addr:  addr,
		opts:  opts,
		slots: make(chan struct{}, opts.Size),
	}
	if reg := opts.Registry; reg != nil {
		// Func instruments rebind on re-registration, so a pool recreated for
		// the same peer (a node restart) takes over its series cleanly.
		reg.CounterFunc("dvdc_pool_dials_total", func() float64 { return float64(p.dials.Load()) }, "peer", opts.Peer)
		reg.CounterFunc("dvdc_pool_reuses_total", func() float64 { return float64(p.reuses.Load()) }, "peer", opts.Peer)
		reg.CounterFunc("dvdc_pool_stale_drains_total", func() float64 { return float64(p.staleDrains.Load()) }, "peer", opts.Peer)
		reg.CounterFunc("dvdc_pool_retries_total", func() float64 { return float64(p.retries.Load()) }, "peer", opts.Peer)
		reg.GaugeFunc("dvdc_pool_open_conns", func() float64 { return float64(p.openConns.Load()) }, "peer", opts.Peer)
		p.latency = reg.Histogram("dvdc_rpc_latency_seconds", obs.LatencyBuckets(), "peer", opts.Peer)
	}
	return p
}

// Addr returns the peer address.
func (p *Pool) Addr() string { return p.addr }

// Retries returns the cumulative count of in-call retries and re-dial
// attempts (a health signal: a flapping peer drives it up).
func (p *Pool) Retries() int64 { return p.retries.Load() }

// PoolStats is a point-in-time snapshot of a pool's health counters.
type PoolStats struct {
	Peer        string
	Dials       int64 // fresh connections established
	Reuses      int64 // calls served over a pooled idle connection
	StaleDrains int64 // pooled connections discarded after failing a call
	Retries     int64 // in-call retries plus re-dial attempts
	OpenConns   int64 // connections currently alive (idle + checked out)
	Idle        int   // connections parked in the idle list right now
}

// Stats snapshots the pool's health counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	idle := len(p.idle)
	p.mu.Unlock()
	return PoolStats{
		Peer:        p.opts.Peer,
		Dials:       p.dials.Load(),
		Reuses:      p.reuses.Load(),
		StaleDrains: p.staleDrains.Load(),
		Retries:     p.retries.Load(),
		OpenConns:   p.openConns.Load(),
		Idle:        idle,
	}
}

// closeConn closes a pool-owned connection, keeping the open-conns gauge
// honest.
func (p *Pool) closeConn(c *Conn) {
	p.openConns.Add(-1)
	c.Close()
}

// Call sends one request and waits for the reply, checking a connection out
// of the pool (dialing if none is idle). On a transport failure over a
// reused connection the call discards it and tries again — the peer may have
// restarted on the same address, leaving every pooled connection stale — with
// at most one retry over a fresh dial. Timeouts are not retried: a peer that
// blew the call deadline once is stalled, and retrying would double the
// caller's wait.
func (p *Pool) Call(req *wire.Message) (*wire.Message, error) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("transport: pool for %s is closed", p.addr)
	}
	p.slots <- struct{}{}
	defer func() { <-p.slots }()
	// Failures on reused connections do not consume the retry budget: after a
	// peer restart every idle connection in the pool is stale, and a call must
	// be able to drain them all (they are discarded as they fail, so this is
	// bounded by Size) before its one fresh-dial retry. Counting stale-conn
	// failures against the budget made the second stale connection fatal.
	freshFailures := 0
	for attempt := 0; attempt <= p.opts.Size+1; attempt++ {
		c, reused, err := p.get()
		if err != nil {
			return nil, err
		}
		// Traced requests get one child span per attempt. The message is
		// shallow-copied before re-stamping Span: callers (node fan-out) may
		// share one request across concurrent peers, so the original must not
		// be written to.
		m := req
		var span *obs.Active
		if p.opts.Tracer != nil && req.Trace != 0 {
			span = p.opts.Tracer.Child(obs.SpanContext{Trace: req.Trace, Span: req.Span}, "rpc "+req.Type.String(), "")
			if span != nil {
				span.SetAttr("peer", p.opts.Peer)
				if attempt > 0 {
					span.SetAttr("attempt", strconv.Itoa(attempt))
				}
				cp := *req
				cp.Span = span.ID()
				m = &cp
			}
		}
		start := time.Now()
		resp, err := c.Call(m)
		elapsed := time.Since(start)
		if p.latency != nil {
			p.latency.Observe(elapsed.Seconds())
		}
		p.opts.Recorder.RPC(p.opts.Peer, req.Type.String(), elapsed, req.Trace, err)
		span.FinishErr(err)
		if err == nil {
			p.put(c)
			return resp, nil
		}
		var remote *wire.RemoteError
		if errors.As(err, &remote) {
			// The handler answered (with an error); the stream is in sync.
			p.put(c)
			return nil, err
		}
		p.closeConn(c)
		if reused {
			p.staleDrains.Add(1)
		}
		// Timeouts are never retried. A reused (possibly stale) connection is
		// always worth retrying; a fresh one only when the failure is stream
		// corruption: a mangled frame (wire.ErrFrame) or an abruptly cut
		// stream means the *connection* failed the call, not the caller.
		// Without that, a corrupted first call on a brand-new pool surfaces
		// as a caller error although a clean retry would have succeeded. One
		// fresh-dial failure is the budget — the second means the peer itself
		// is sick, not the connection.
		if isTimeout(err) || !(reused || wire.IsDecodeErr(err) || isAbruptClose(err)) {
			return nil, err
		}
		if !reused {
			freshFailures++
			if freshFailures > 1 {
				return nil, err
			}
		}
		p.retries.Add(1)
	}
	return nil, fmt.Errorf("transport: call to %s exhausted retry budget", p.addr)
}

// get checks out an idle connection (reused=true) or dials a fresh one.
func (p *Pool) get() (c *Conn, reused bool, err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, false, fmt.Errorf("transport: pool for %s is closed", p.addr)
	}
	if n := len(p.idle); n > 0 {
		c = p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		p.reuses.Add(1)
		return c, true, nil
	}
	p.mu.Unlock()
	c, err = p.dial()
	return c, false, err
}

// dial connects with bounded retry and exponential backoff.
func (p *Pool) dial() (*Conn, error) {
	backoff := p.opts.Backoff
	var lastErr error
	for i := 0; i <= p.opts.DialRetries; i++ {
		if i > 0 {
			p.retries.Add(1)
			time.Sleep(backoff)
			backoff *= 2
		}
		c, err := DialWith(p.addr, p.opts.DialTimeout, p.opts.Dialer)
		if err == nil {
			if p.opts.CallTimeout > 0 {
				c.SetTimeout(p.opts.CallTimeout)
			}
			p.dials.Add(1)
			p.openConns.Add(1)
			return c, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// put returns a healthy connection to the idle list (closing it if the pool
// has shut down or already holds enough spares).
func (p *Pool) put(c *Conn) {
	p.mu.Lock()
	if p.closed || len(p.idle) >= p.opts.Size {
		p.mu.Unlock()
		p.closeConn(c)
		return
	}
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

// Close closes idle connections and rejects future calls. Connections
// currently checked out are closed as their calls complete.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, c := range idle {
		p.closeConn(c)
	}
}

// isTimeout reports whether err is an I/O deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// isAbruptClose reports whether err is a mid-exchange stream cut: the peer
// (or a fault injector) severed the connection before the reply arrived.
// This happens to a fresh connection when the server rejects a corrupted
// request frame by dropping the conn, so it is retried like a stale one.
func isAbruptClose(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE)
}
