package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dvdc/internal/wire"
)

// countingProxy forwards raw TCP to backend and counts accepted connections,
// so tests can observe how many times a client actually dialed.
func countingProxy(t *testing.T, backend string) (string, *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var accepts atomic.Int64
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepts.Add(1)
			b, err := net.Dial("tcp", backend)
			if err != nil {
				c.Close()
				continue
			}
			go func() {
				io.Copy(b, c) //nolint:errcheck
				b.(*net.TCPConn).CloseWrite()
			}()
			go func() {
				io.Copy(c, b) //nolint:errcheck
				c.(*net.TCPConn).CloseWrite()
			}()
		}
	}()
	return ln.Addr().String(), &accepts
}

// stallServer answers MsgHello immediately and blocks every other request
// until the test finishes.
func stallServer(t *testing.T) *Server {
	t.Helper()
	stall := make(chan struct{})
	s, err := Listen("127.0.0.1:0", func(req *wire.Message) (*wire.Message, error) {
		if req.Type == wire.MsgHello {
			return &wire.Message{Type: wire.MsgHelloOK}, nil
		}
		<-stall
		return nil, fmt.Errorf("stalled")
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	t.Cleanup(func() { close(stall) }) // runs before s.Close (LIFO)
	return s
}

func TestPoolReusesIdleConnections(t *testing.T) {
	s := echoServer(t)
	addr, accepts := countingProxy(t, s.Addr())
	p := NewPool(addr, PoolOptions{})
	defer p.Close()
	for i := 0; i < 5; i++ {
		if _, err := p.Call(&wire.Message{Type: wire.MsgHello}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if n := accepts.Load(); n != 1 {
		t.Errorf("5 sequential calls dialed %d connections, want 1", n)
	}
	if p.Retries() != 0 {
		t.Errorf("retries = %d, want 0", p.Retries())
	}
}

func TestPoolFansOutConcurrently(t *testing.T) {
	// A handler that takes 50ms per request: 8 calls through a Size-4 pool
	// must overlap (well under the 400ms a single serialized connection
	// would need).
	s, err := Listen("127.0.0.1:0", func(req *wire.Message) (*wire.Message, error) {
		time.Sleep(50 * time.Millisecond)
		return &wire.Message{Type: wire.MsgHelloOK}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p := NewPool(s.Addr(), PoolOptions{Size: 4})
	defer p.Close()
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.Call(&wire.Message{Type: wire.MsgHello})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if d := time.Since(start); d > 350*time.Millisecond {
		t.Errorf("8 calls through a 4-wide pool took %v, want well under the 400ms serial cost", d)
	}
}

func TestPoolRedialsAfterServerRestart(t *testing.T) {
	s := echoServer(t)
	addr := s.Addr()
	p := NewPool(addr, PoolOptions{})
	defer p.Close()
	if _, err := p.Call(&wire.Message{Type: wire.MsgHello}); err != nil {
		t.Fatal(err)
	}
	// The daemon restarts on the same address; the pool's cached connection
	// is now stale.
	s.Close()
	s2, err := Listen(addr, func(req *wire.Message) (*wire.Message, error) {
		return &wire.Message{Type: wire.MsgHelloOK}, nil
	})
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer s2.Close()
	if _, err := p.Call(&wire.Message{Type: wire.MsgHello}); err != nil {
		t.Fatalf("call after restart: %v", err)
	}
	if p.Retries() == 0 {
		t.Error("expected the pool to record a retry over the stale connection")
	}
}

func TestPoolDoesNotRetryTimedOutCalls(t *testing.T) {
	s := stallServer(t)
	p := NewPool(s.Addr(), PoolOptions{CallTimeout: 100 * time.Millisecond})
	defer p.Close()
	// Prime the pool so the stalled call lands on a reused connection — the
	// case where a transport failure *would* be retried.
	if _, err := p.Call(&wire.Message{Type: wire.MsgHello}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := p.Call(&wire.Message{Type: wire.MsgStep})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("call against a stalled handler should fail")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("error %v is not a timeout", err)
	}
	if elapsed > 800*time.Millisecond {
		t.Errorf("timed-out call took %v; a retry would have doubled the wait", elapsed)
	}
	if p.Retries() != 0 {
		t.Errorf("retries = %d, want 0 (timeouts must not be retried)", p.Retries())
	}
}

func TestConnCallDeadline(t *testing.T) {
	s := stallServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(100 * time.Millisecond)
	start := time.Now()
	_, err = c.Call(&wire.Message{Type: wire.MsgStep})
	if err == nil {
		t.Fatal("call against a stalled handler should fail")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("error %v is not a timeout", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("deadline took %v to fire", d)
	}
}

// fakeListener fails every Accept with a fixed sequence of errors (the last
// entry repeats), for driving acceptLoop's failure handling.
type fakeListener struct {
	mu      sync.Mutex
	accepts int
	errs    []error
}

func (f *fakeListener) Accept() (net.Conn, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.accepts++
	i := f.accepts - 1
	if i >= len(f.errs) {
		i = len(f.errs) - 1
	}
	return nil, f.errs[i]
}

func (f *fakeListener) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.accepts
}

func (f *fakeListener) Close() error   { return nil }
func (f *fakeListener) Addr() net.Addr { return &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1)} }

// runAcceptLoop runs acceptLoop over a fake listener and reports whether it
// returned within the timeout.
func runAcceptLoop(t *testing.T, f *fakeListener, timeout time.Duration) bool {
	t.Helper()
	s := &Server{ln: f, handler: func(*wire.Message) (*wire.Message, error) { return nil, nil },
		conns: map[net.Conn]struct{}{}, done: make(chan struct{})}
	s.wg.Add(1)
	returned := make(chan struct{})
	go func() {
		s.acceptLoop()
		close(returned)
	}()
	select {
	case <-returned:
		return true
	case <-time.After(timeout):
		return false
	}
}

func TestAcceptLoopBacksOffThenStopsOnClosedListener(t *testing.T) {
	defer func(min, max time.Duration, n int) {
		acceptBackoffMin, acceptBackoffMax, maxAcceptFailures = min, max, n
	}(acceptBackoffMin, acceptBackoffMax, maxAcceptFailures)
	acceptBackoffMin, acceptBackoffMax, maxAcceptFailures = time.Millisecond, 4*time.Millisecond, 100

	transient := errors.New("transient accept failure")
	f := &fakeListener{errs: []error{transient, transient, net.ErrClosed}}
	if !runAcceptLoop(t, f, 2*time.Second) {
		t.Fatal("acceptLoop did not stop on a closed listener")
	}
	if got := f.count(); got != 3 {
		t.Errorf("accept called %d times, want 3 (two transient failures, then closed)", got)
	}
}

func TestAcceptLoopGivesUpOnPersistentFailure(t *testing.T) {
	defer func(min, max time.Duration, n int) {
		acceptBackoffMin, acceptBackoffMax, maxAcceptFailures = min, max, n
	}(acceptBackoffMin, acceptBackoffMax, maxAcceptFailures)
	acceptBackoffMin, acceptBackoffMax, maxAcceptFailures = time.Millisecond, 4*time.Millisecond, 6

	f := &fakeListener{errs: []error{errors.New("persistent accept failure")}}
	if !runAcceptLoop(t, f, 2*time.Second) {
		t.Fatal("acceptLoop spun forever on a permanently broken listener")
	}
	if got := f.count(); got != 6 {
		t.Errorf("accept called %d times before giving up, want maxAcceptFailures=6", got)
	}
}
