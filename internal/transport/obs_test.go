package transport

import (
	"strings"
	"testing"
	"time"

	"dvdc/internal/obs"
	"dvdc/internal/wire"
)

// TestPoolStatsAndRegistry drives a pool through dial, reuse, and restart
// drain, then checks both the Stats snapshot and the registry exposition.
func TestPoolStatsAndRegistry(t *testing.T) {
	s, err := Listen("127.0.0.1:0", func(req *wire.Message) (*wire.Message, error) {
		return &wire.Message{Type: wire.MsgHelloOK}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	reg := obs.NewRegistry()
	p := NewPool(s.Addr(), PoolOptions{Peer: "node1", Registry: reg, CallTimeout: 2 * time.Second})
	defer p.Close()

	for i := 0; i < 3; i++ {
		if _, err := p.Call(&wire.Message{Type: wire.MsgHello}); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Peer != "node1" || st.Dials != 1 || st.Reuses != 2 || st.OpenConns != 1 || st.Idle != 1 {
		t.Errorf("stats after 3 sequential calls: %+v", st)
	}

	// Restart the peer on the same address: the pooled connection goes stale
	// and must be drained (and counted) before the fresh-dial retry succeeds.
	addr := s.Addr()
	s.Close()
	s2, err := Listen(addr, func(req *wire.Message) (*wire.Message, error) {
		return &wire.Message{Type: wire.MsgHelloOK}, nil
	})
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer s2.Close()
	if _, err := p.Call(&wire.Message{Type: wire.MsgHello}); err != nil {
		t.Fatal(err)
	}
	st = p.Stats()
	if st.StaleDrains != 1 || st.Dials != 2 || st.OpenConns != 1 {
		t.Errorf("stats after restart drain: %+v", st)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`dvdc_pool_dials_total{peer="node1"} 2`,
		`dvdc_pool_stale_drains_total{peer="node1"} 1`,
		`dvdc_pool_open_conns{peer="node1"} 1`,
		`dvdc_rpc_latency_seconds_count{peer="node1"} `,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

// TestPoolTracePropagation checks that a traced request produces a per-attempt
// rpc span parented under the caller's span, that the server sees the pool's
// re-stamped span id, and that untraced requests produce no spans.
func TestPoolTracePropagation(t *testing.T) {
	seen := make(chan wire.Message, 4)
	s, err := Listen("127.0.0.1:0", func(req *wire.Message) (*wire.Message, error) {
		seen <- *req
		return &wire.Message{Type: wire.MsgHelloOK}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	tr := obs.NewTracer(32)
	p := NewPool(s.Addr(), PoolOptions{Peer: "node1", Tracer: tr})
	defer p.Close()

	// Untraced: no span minted.
	if _, err := p.Call(&wire.Message{Type: wire.MsgHello}); err != nil {
		t.Fatal(err)
	}
	<-seen
	if n := len(tr.Spans()); n != 0 {
		t.Fatalf("untraced call minted %d spans", n)
	}

	root := tr.Start(obs.SpanContext{}, "round", "coord")
	req := &wire.Message{Type: wire.MsgHello, Trace: root.TraceID(), Span: root.ID()}
	if _, err := p.Call(req); err != nil {
		t.Fatal(err)
	}
	root.Finish()

	got := <-seen
	spans := tr.TraceSpans(root.TraceID())
	if len(spans) != 2 {
		t.Fatalf("trace has %d spans, want rpc + root", len(spans))
	}
	rpc := spans[0]
	if rpc.Name != "rpc hello" || rpc.Parent != root.ID() {
		t.Errorf("rpc span mis-parented: %+v", rpc)
	}
	if got.Trace != root.TraceID() || got.Span != rpc.ID {
		t.Errorf("server saw trace %x span %x, want trace %x span %x (the attempt span)",
			got.Trace, got.Span, root.TraceID(), rpc.ID)
	}
	if req.Span != root.ID() {
		t.Error("pool mutated the caller's message (shared-message data race)")
	}
}
