package cluster

import (
	"fmt"
	"sort"
)

// StepKind distinguishes what a recovery step restores.
type StepKind int

// Recovery step kinds.
const (
	RestoreVM    StepKind = iota // rebuild a lost VM's checkpoint and respawn it
	RehomeParity                 // recompute a lost parity block on a new node
)

// String returns the step kind name.
func (k StepKind) String() string {
	if k == RestoreVM {
		return "restore-vm"
	}
	return "rehome-parity"
}

// Step is one unit of recovery work.
type Step struct {
	Kind        StepKind
	VM          string // for RestoreVM: the lost VM's name
	Group       int
	TargetNode  int   // where the rebuilt element will live
	SourceNodes []int // surviving nodes whose blocks feed the reconstruction
	Degraded    bool  // the target shares a node with another group element
}

// Plan is the ordered recovery work after one or more node failures.
type Plan struct {
	Down  []int
	Steps []Step
	// Degraded is set when at least one step had to violate orthogonality
	// because every surviving node already holds an element of the affected
	// group (unavoidable when groupSize+tolerance equals the node count, as
	// in the paper's 4-node/12-VM configuration). Data is fully restored,
	// but some groups tolerate fewer subsequent failures until the failed
	// node is repaired and VMs are re-balanced.
	Degraded bool
}

// PlanRecovery computes how to restore full protection after the given
// nodes fail simultaneously. For every lost VM it selects a surviving target
// node that holds no other element of the VM's group (preserving
// orthogonality) and lists the surviving source nodes whose data plus parity
// reconstruct the lost checkpoint. Lost parity blocks are likewise re-homed.
// Targets are chosen least-loaded-first, counting moves already planned.
//
// It fails if any group lost more elements than the layout tolerates or if
// no orthogonality-preserving target exists.
func (l *Layout) PlanRecovery(down ...int) (*Plan, error) {
	downSet := map[int]bool{}
	for _, n := range down {
		if n < 0 || n >= l.Nodes {
			return nil, fmt.Errorf("cluster: down node %d out of range [0,%d)", n, l.Nodes)
		}
		downSet[n] = true
	}
	if len(downSet) == 0 {
		return &Plan{}, nil
	}
	for g, lost := range l.LostElements(down...) {
		if lost > l.Tolerance {
			return nil, fmt.Errorf("cluster: group %d lost %d elements, tolerance %d", g, lost, l.Tolerance)
		}
	}

	// Current VM load per node, updated as we plan moves.
	load := make([]int, l.Nodes)
	for _, v := range l.VMs {
		if !downSet[v.Node] {
			load[v.Node]++
		}
	}

	groupNodes := func(g Group) map[int]bool {
		occ := map[int]bool{}
		for _, m := range g.Members {
			v, _ := l.VM(m)
			if !downSet[v.Node] {
				occ[v.Node] = true
			}
		}
		for _, p := range g.ParityNodes {
			if !downSet[p] {
				occ[p] = true
			}
		}
		return occ
	}

	// sources lists surviving nodes holding this group's blocks.
	sources := func(g Group) []int {
		occ := groupNodes(g)
		out := make([]int, 0, len(occ))
		for n := range occ {
			out = append(out, n)
		}
		sort.Ints(out)
		return out
	}

	plan := &Plan{}
	for n := range downSet {
		plan.Down = append(plan.Down, n)
	}
	sort.Ints(plan.Down)

	// Plan moves group by group so newly planned placements are visible to
	// later choices within the same group.
	planned := map[int]map[int]bool{} // group -> extra occupied nodes
	occupied := func(g Group) map[int]bool {
		occ := groupNodes(g)
		for n := range planned[g.Index] {
			occ[n] = true
		}
		return occ
	}
	// pickTarget prefers a surviving node free of this group's elements;
	// when none exists (the group already spans every surviving node) it
	// falls back to the least-loaded surviving node and reports the
	// placement as degraded.
	pickTarget := func(g Group) (node int, degraded bool, err error) {
		occ := occupied(g)
		best, bestLoad := -1, int(^uint(0)>>1)
		for n := 0; n < l.Nodes; n++ {
			if downSet[n] || occ[n] {
				continue
			}
			if load[n] < bestLoad {
				best, bestLoad = n, load[n]
			}
		}
		if best == -1 {
			degraded = true
			for n := 0; n < l.Nodes; n++ {
				if downSet[n] {
					continue
				}
				if load[n] < bestLoad {
					best, bestLoad = n, load[n]
				}
			}
		}
		if best == -1 {
			return 0, false, fmt.Errorf("cluster: no surviving node can host group %d", g.Index)
		}
		if planned[g.Index] == nil {
			planned[g.Index] = map[int]bool{}
		}
		planned[g.Index][best] = true
		return best, degraded, nil
	}

	// Lost VMs first (they block job resumption), then lost parity.
	for _, v := range l.VMs {
		if !downSet[v.Node] {
			continue
		}
		g := l.Groups[v.Group]
		target, degraded, err := pickTarget(g)
		if err != nil {
			return nil, err
		}
		load[target]++
		plan.Degraded = plan.Degraded || degraded
		plan.Steps = append(plan.Steps, Step{
			Kind:        RestoreVM,
			VM:          v.Name,
			Group:       v.Group,
			TargetNode:  target,
			SourceNodes: sources(g),
			Degraded:    degraded,
		})
	}
	for _, g := range l.Groups {
		for _, p := range g.ParityNodes {
			if !downSet[p] {
				continue
			}
			target, degraded, err := pickTarget(g)
			if err != nil {
				return nil, err
			}
			plan.Degraded = plan.Degraded || degraded
			plan.Steps = append(plan.Steps, Step{
				Kind:        RehomeParity,
				Group:       g.Index,
				TargetNode:  target,
				SourceNodes: sources(g),
				Degraded:    degraded,
			})
		}
	}
	return plan, nil
}

// ApplyRecovery mutates the layout so it reflects a completed plan: lost VMs
// move to their target nodes, and lost parity blocks are re-homed. The
// resulting layout must validate, and callers should check Survives again
// before trusting further failures to be tolerable.
func (l *Layout) ApplyRecovery(p *Plan) error {
	downSet := map[int]bool{}
	for _, n := range p.Down {
		downSet[n] = true
	}
	for _, s := range p.Steps {
		switch s.Kind {
		case RestoreVM:
			i, ok := l.vmIndex[s.VM]
			if !ok {
				return fmt.Errorf("cluster: plan restores unknown VM %q", s.VM)
			}
			l.VMs[i].Node = s.TargetNode
		case RehomeParity:
			if s.Group < 0 || s.Group >= len(l.Groups) {
				return fmt.Errorf("cluster: plan re-homes parity of unknown group %d", s.Group)
			}
			g := &l.Groups[s.Group]
			moved := false
			for j, pn := range g.ParityNodes {
				if downSet[pn] {
					g.ParityNodes[j] = s.TargetNode
					moved = true
					break
				}
			}
			if !moved {
				return fmt.Errorf("cluster: group %d has no parity on a down node", s.Group)
			}
		default:
			return fmt.Errorf("cluster: unknown step kind %d", s.Kind)
		}
	}
	if p.Degraded {
		return l.ValidateDegraded()
	}
	return l.Validate()
}
