package cluster

import (
	"testing"
)

func TestBuildFirstShot(t *testing.T) {
	l, err := BuildFirstShot(3)
	if err != nil {
		t.Fatal(err)
	}
	if l.Nodes != 4 || len(l.VMs) != 3 || len(l.Groups) != 1 {
		t.Fatalf("geometry: nodes=%d vms=%d groups=%d", l.Nodes, len(l.VMs), len(l.Groups))
	}
	if l.Groups[0].ParityNodes[0] != 3 {
		t.Error("parity should live on the dedicated node 3")
	}
	if got := l.VMsOnNode(3); len(got) != 0 {
		t.Errorf("dedicated node hosts VMs: %v", got)
	}
	if _, err := BuildFirstShot(1); err == nil {
		t.Error("1 compute node should fail")
	}
}

func TestBuildDedicated(t *testing.T) {
	l, err := BuildDedicated(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l.Nodes != 5 || len(l.VMs) != 12 || len(l.Groups) != 3 {
		t.Fatalf("geometry: nodes=%d vms=%d groups=%d", l.Nodes, len(l.VMs), len(l.Groups))
	}
	for _, g := range l.Groups {
		if g.ParityNodes[0] != 4 {
			t.Errorf("group %d parity on node %d, want 4", g.Index, g.ParityNodes[0])
		}
	}
	for n := 0; n < 4; n++ {
		if got := len(l.VMsOnNode(n)); got != 3 {
			t.Errorf("node %d hosts %d VMs, want 3", n, got)
		}
	}
}

func TestBuildDistributedPaperConfig(t *testing.T) {
	l, err := Paper12VM()
	if err != nil {
		t.Fatal(err)
	}
	if l.Nodes != 4 || len(l.VMs) != 12 || len(l.Groups) != 4 {
		t.Fatalf("geometry: nodes=%d vms=%d groups=%d", l.Nodes, len(l.VMs), len(l.Groups))
	}
	// Every node hosts exactly 3 VMs and exactly 1 group's parity: the
	// fully-utilized Fig. 4 configuration with no dedicated hardware.
	for n := 0; n < 4; n++ {
		if got := len(l.VMsOnNode(n)); got != 3 {
			t.Errorf("node %d hosts %d VMs, want 3", n, got)
		}
		if got := len(l.ParityGroupsOnNode(n)); got != 1 {
			t.Errorf("node %d holds parity for %d groups, want 1", n, got)
		}
	}
}

func TestBuildDistributedValidation(t *testing.T) {
	if _, err := BuildDistributed(2, 1, 2); err == nil {
		t.Error("2 nodes with tolerance 2 should fail (group size 0)")
	}
	if _, err := BuildDistributed(4, 0, 1); err == nil {
		t.Error("0 stacks should fail")
	}
	if _, err := BuildDistributed(4, 1, 0); err == nil {
		t.Error("0 tolerance should fail")
	}
}

func TestBuildDistributedStacksScaleVMs(t *testing.T) {
	l, err := BuildDistributed(4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.VMs) != 36 || len(l.Groups) != 12 {
		t.Fatalf("vms=%d groups=%d, want 36/12", len(l.VMs), len(l.Groups))
	}
	for n := 0; n < 4; n++ {
		if got := len(l.VMsOnNode(n)); got != 9 {
			t.Errorf("node %d hosts %d VMs, want 9", n, got)
		}
	}
}

func TestValidateCatchesNonOrthogonal(t *testing.T) {
	l, _ := Paper12VM()
	// Move a VM onto a node already hosting another member of its group.
	g := l.Groups[0]
	a, _ := l.VM(g.Members[0])
	bIdx := l.vmIndex[g.Members[1]]
	l.VMs[bIdx].Node = a.Node
	if err := l.Validate(); err == nil {
		t.Error("co-located group members should fail validation")
	}
}

func TestValidateCatchesParityOnMemberNode(t *testing.T) {
	l, _ := Paper12VM()
	m, _ := l.VM(l.Groups[0].Members[0])
	l.Groups[0].ParityNodes[0] = m.Node
	if err := l.Validate(); err == nil {
		t.Error("parity on a member's node should fail validation")
	}
}

func TestValidateCatchesDuplicateNamesAndOrphans(t *testing.T) {
	l, _ := BuildFirstShot(2)
	l.VMs[1].Name = l.VMs[0].Name
	if err := l.Validate(); err == nil {
		t.Error("duplicate names should fail")
	}
	l, _ = BuildFirstShot(2)
	l.Groups[0].Members = l.Groups[0].Members[:1]
	if err := l.Validate(); err == nil {
		t.Error("orphan VM should fail")
	}
}

func TestAllArchitecturesSurviveAnySingleFailure(t *testing.T) {
	fs, _ := BuildFirstShot(4)
	de, _ := BuildDedicated(4, 3)
	dv, _ := Paper12VM()
	for _, l := range []*Layout{fs, de, dv} {
		for n := 0; n < l.Nodes; n++ {
			if !l.Survives(n) {
				t.Errorf("%v: does not survive failure of node %d", l.Arch, n)
			}
		}
	}
}

func TestSingleParityDoesNotSurviveDoubleFailure(t *testing.T) {
	l, _ := Paper12VM()
	// In the 4-node DVDC layout every pair of nodes shares at least one
	// group, so any double failure defeats single parity.
	survivedAny := false
	for a := 0; a < l.Nodes; a++ {
		for b := a + 1; b < l.Nodes; b++ {
			if l.Survives(a, b) {
				survivedAny = true
			}
		}
	}
	if survivedAny {
		t.Error("single-parity 4-node layout should not survive any double failure")
	}
}

func TestTolerance2SurvivesAllDoubleFailures(t *testing.T) {
	l, err := BuildDistributed(6, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < l.Nodes; a++ {
		for b := a + 1; b < l.Nodes; b++ {
			if !l.Survives(a, b) {
				t.Errorf("tolerance-2 layout lost data on failure of (%d,%d)", a, b)
			}
		}
	}
	// But not all triples.
	if l.Survives(0, 1, 2) {
		t.Error("tolerance-2 layout should not survive this triple failure")
	}
}

func TestLostElementsCounts(t *testing.T) {
	l, _ := Paper12VM()
	lost := l.LostElements(0)
	// Node 0 hosts 3 VMs (one from three different groups) and one group's
	// parity: four groups each lose exactly one element.
	if len(lost) != 4 {
		t.Fatalf("LostElements(0) covers %d groups, want 4", len(lost))
	}
	for g, n := range lost {
		if n != 1 {
			t.Errorf("group %d lost %d elements, want 1", g, n)
		}
	}
}

func TestVMLookup(t *testing.T) {
	l, _ := Paper12VM()
	v, ok := l.VM(l.VMs[5].Name)
	if !ok || v != l.VMs[5] {
		t.Error("VM lookup failed")
	}
	if _, ok := l.VM("nope"); ok {
		t.Error("lookup of unknown VM should fail")
	}
}

func TestComputeNodes(t *testing.T) {
	l, _ := BuildDedicated(3, 2)
	got := l.ComputeNodes()
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("ComputeNodes = %v, want [0 1 2]", got)
	}
}

func TestArchitectureString(t *testing.T) {
	for _, a := range []Architecture{FirstShot, Dedicated, Distributed, Architecture(9)} {
		if a.String() == "" {
			t.Errorf("empty string for %d", int(a))
		}
	}
}
