package cluster

import (
	"testing"
	"testing/quick"
)

func TestPlanRebalanceNoopOnOrthogonalLayout(t *testing.T) {
	l, _ := Paper12VM()
	plan, err := l.PlanRebalance()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 0 {
		t.Errorf("orthogonal layout produced %d moves", len(plan.Steps))
	}
}

func TestRebalanceAfterDegradedRecovery(t *testing.T) {
	// Fail a node in the paper layout (necessarily degraded), then repair
	// it: rebalance must restore strict orthogonality.
	l, _ := Paper12VM()
	plan, err := l.PlanRecovery(0)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Degraded {
		t.Fatal("expected degraded recovery")
	}
	if err := l.ApplyRecovery(plan); err != nil {
		t.Fatal(err)
	}
	if l.Validate() == nil {
		t.Fatal("layout should be non-orthogonal before rebalance")
	}
	// Node 0 repaired: nothing down anymore.
	rb, err := l.PlanRebalance()
	if err != nil {
		t.Fatal(err)
	}
	if len(rb.Steps) == 0 {
		t.Fatal("rebalance should have moves")
	}
	if err := l.ApplyRebalance(rb); err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Errorf("layout not orthogonal after rebalance: %v", err)
	}
}

func TestPlanRebalanceFailsWhileNodeStillDown(t *testing.T) {
	// Without the repaired node there is no room in the 4-node layout.
	l, _ := Paper12VM()
	plan, _ := l.PlanRecovery(0)
	if err := l.ApplyRecovery(plan); err != nil {
		t.Fatal(err)
	}
	if _, err := l.PlanRebalance(0); err == nil {
		t.Error("rebalance with the node still down should find no target")
	}
}

func TestPlanRebalanceValidation(t *testing.T) {
	l, _ := Paper12VM()
	if _, err := l.PlanRebalance(-1); err == nil {
		t.Error("bad down node should fail")
	}
}

func TestApplyRebalanceValidation(t *testing.T) {
	l, _ := Paper12VM()
	bad := &Plan{Steps: []Step{{Kind: RestoreVM, VM: "nope", TargetNode: 0}}}
	if err := l.ApplyRebalance(bad); err == nil {
		t.Error("unknown VM should fail")
	}
	bad = &Plan{Steps: []Step{{Kind: RehomeParity, Group: 0, TargetNode: 0}}}
	if err := l.ApplyRebalance(bad); err == nil {
		t.Error("parity step without index should fail")
	}
}

// Property: recovery-then-repair-then-rebalance always restores strict
// orthogonality on spare-rich layouts.
func TestQuickRebalanceRestoresOrthogonality(t *testing.T) {
	f := func(nRaw, failRaw uint8) bool {
		nodes := int(nRaw%5) + 4
		l, err := BuildDistributedGroups(nodes, 1, 1, nodes-1)
		if err != nil {
			return false
		}
		fail := int(failRaw) % nodes
		plan, err := l.PlanRecovery(fail)
		if err != nil {
			return false
		}
		if err := l.ApplyRecovery(plan); err != nil {
			return false
		}
		rb, err := l.PlanRebalance() // node repaired
		if err != nil {
			return false
		}
		if err := l.ApplyRebalance(rb); err != nil {
			return false
		}
		return l.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
