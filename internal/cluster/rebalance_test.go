package cluster

import (
	"testing"
	"testing/quick"
)

func TestPlanRebalanceNoopOnOrthogonalLayout(t *testing.T) {
	l, _ := Paper12VM()
	plan, err := l.PlanRebalance()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 0 {
		t.Errorf("orthogonal layout produced %d moves", len(plan.Steps))
	}
}

func TestRebalanceAfterDegradedRecovery(t *testing.T) {
	// Fail a node in the paper layout (necessarily degraded), then repair
	// it: rebalance must restore strict orthogonality.
	l, _ := Paper12VM()
	plan, err := l.PlanRecovery(0)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Degraded {
		t.Fatal("expected degraded recovery")
	}
	if err := l.ApplyRecovery(plan); err != nil {
		t.Fatal(err)
	}
	if l.Validate() == nil {
		t.Fatal("layout should be non-orthogonal before rebalance")
	}
	// Node 0 repaired: nothing down anymore.
	rb, err := l.PlanRebalance()
	if err != nil {
		t.Fatal(err)
	}
	if len(rb.Steps) == 0 {
		t.Fatal("rebalance should have moves")
	}
	if err := l.ApplyRebalance(rb); err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Errorf("layout not orthogonal after rebalance: %v", err)
	}
}

func TestPlanRebalanceFailsWhileNodeStillDown(t *testing.T) {
	// Without the repaired node there is no room in the 4-node layout.
	l, _ := Paper12VM()
	plan, _ := l.PlanRecovery(0)
	if err := l.ApplyRecovery(plan); err != nil {
		t.Fatal(err)
	}
	if _, err := l.PlanRebalance(0); err == nil {
		t.Error("rebalance with the node still down should find no target")
	}
}

func TestPlanRebalanceValidation(t *testing.T) {
	l, _ := Paper12VM()
	if _, err := l.PlanRebalance(-1); err == nil {
		t.Error("bad down node should fail")
	}
}

func TestApplyRebalanceValidation(t *testing.T) {
	l, _ := Paper12VM()
	bad := &Plan{Steps: []Step{{Kind: RestoreVM, VM: "nope", TargetNode: 0}}}
	if err := l.ApplyRebalance(bad); err == nil {
		t.Error("unknown VM should fail")
	}
	bad = &Plan{Steps: []Step{{Kind: RehomeParity, Group: 0, TargetNode: 0}}}
	if err := l.ApplyRebalance(bad); err == nil {
		t.Error("parity step without index should fail")
	}
}

// Property: recovery-then-repair-then-rebalance always restores strict
// orthogonality on spare-rich layouts.
func TestQuickRebalanceRestoresOrthogonality(t *testing.T) {
	f := func(nRaw, failRaw uint8) bool {
		nodes := int(nRaw%5) + 4
		l, err := BuildDistributedGroups(nodes, 1, 1, nodes-1)
		if err != nil {
			return false
		}
		fail := int(failRaw) % nodes
		plan, err := l.PlanRecovery(fail)
		if err != nil {
			return false
		}
		if err := l.ApplyRecovery(plan); err != nil {
			return false
		}
		rb, err := l.PlanRebalance() // node repaired
		if err != nil {
			return false
		}
		if err := l.ApplyRebalance(rb); err != nil {
			return false
		}
		return l.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPlanKeeperEvacuationMovesAllParityOffNode(t *testing.T) {
	// 6 nodes, groups of 3, tolerance 1: every group leaves two nodes free,
	// so evacuation always has an orthogonal target.
	l, err := BuildDistributedGroups(6, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	const avoid = 1
	var hadParity int
	for _, g := range l.Groups {
		for _, p := range g.ParityNodes {
			if p == avoid {
				hadParity++
			}
		}
	}
	if hadParity == 0 {
		t.Fatalf("layout gives node %d no parity; test is vacuous", avoid)
	}
	plan, err := l.PlanKeeperEvacuation(avoid)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != hadParity {
		t.Fatalf("plan has %d steps, node held %d parity blocks", len(plan.Steps), hadParity)
	}
	for _, s := range plan.Steps {
		if s.Kind != RehomeParity {
			t.Fatalf("evacuation planned a %v step", s.Kind)
		}
		if s.TargetNode == avoid {
			t.Fatalf("evacuation re-targeted the avoided node")
		}
	}
	if err := l.ApplyRebalance(plan); err != nil {
		t.Fatal(err)
	}
	for _, g := range l.Groups {
		for _, p := range g.ParityNodes {
			if p == avoid {
				t.Fatalf("group %d still keeps parity on node %d after evacuation", g.Index, avoid)
			}
		}
	}
	// Orthogonality must have been preserved (ApplyRebalance validates, but
	// assert the property the planner promises explicitly).
	if err := l.Validate(); err != nil {
		t.Fatalf("post-evacuation layout invalid: %v", err)
	}
}

func TestPlanKeeperEvacuationEmptyWhenNodeKeepsNoParity(t *testing.T) {
	l, err := BuildDistributedGroups(6, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Find a node with no parity... every node has parity in this layout, so
	// first evacuate node 1, then a second evacuation of node 1 must be empty.
	plan, err := l.PlanKeeperEvacuation(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.ApplyRebalance(plan); err != nil {
		t.Fatal(err)
	}
	again, err := l.PlanKeeperEvacuation(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Steps) != 0 {
		t.Fatalf("second evacuation planned %d steps, want 0", len(again.Steps))
	}
}

func TestPlanKeeperEvacuationImpossibleInMinimalLayout(t *testing.T) {
	// The paper's 4-node layout has every non-keeper node carrying a member
	// of each group: evacuation must fail loudly, not produce a clashing plan.
	l, _ := Paper12VM()
	if _, err := l.PlanKeeperEvacuation(1); err == nil {
		t.Fatal("evacuation in the minimal layout should have no orthogonal target")
	}
}

func TestPlanKeeperEvacuationAvoidsDownNodes(t *testing.T) {
	l, err := BuildDistributedGroups(6, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := l.PlanKeeperEvacuation(1, 2)
	if err != nil {
		// With one node down a target may legitimately not exist; that error
		// is acceptable, but a plan that targets the down node is not.
		return
	}
	for _, s := range plan.Steps {
		if s.TargetNode == 2 || s.TargetNode == 1 {
			t.Fatalf("evacuation targeted excluded node %d", s.TargetNode)
		}
	}
}

func TestPlanKeeperEvacuationValidation(t *testing.T) {
	l, _ := Paper12VM()
	if _, err := l.PlanKeeperEvacuation(-1); err == nil {
		t.Error("negative node accepted")
	}
	if _, err := l.PlanKeeperEvacuation(l.Nodes); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := l.PlanKeeperEvacuation(0, 99); err == nil {
		t.Error("out-of-range down node accepted")
	}
}
