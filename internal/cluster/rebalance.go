package cluster

import (
	"fmt"
	"sort"
)

// PlanRebalance computes the moves that restore strict orthogonality after
// degraded recoveries have co-located group elements (and after the failed
// node has been repaired, making room). VMs are preferred over parity blocks
// as the things to move — live migration is cheaper than a parity
// recomputation and is the mechanism the paper builds on. down lists nodes
// currently out of service (never chosen as targets).
//
// The returned plan reuses the recovery Step vocabulary: RestoreVM steps
// mean "live-migrate this VM to TargetNode", RehomeParity steps mean
// "recompute this group's parity block on TargetNode". An empty plan means
// the layout is already orthogonal.
func (l *Layout) PlanRebalance(down ...int) (*Plan, error) {
	downSet := map[int]bool{}
	for _, n := range down {
		if n < 0 || n >= l.Nodes {
			return nil, fmt.Errorf("cluster: down node %d out of range [0,%d)", n, l.Nodes)
		}
		downSet[n] = true
	}
	load := make([]int, l.Nodes)
	for _, v := range l.VMs {
		load[v.Node]++
	}
	plan := &Plan{}
	for n := range downSet {
		plan.Down = append(plan.Down, n)
	}
	sort.Ints(plan.Down)

	// Planned extra occupancy per group (moves within this plan).
	planned := map[int]map[int]bool{}
	occupied := func(g Group, exclude map[string]bool, excludeParity map[int]bool) map[int]int {
		occ := map[int]int{}
		for _, m := range g.Members {
			if exclude[m] {
				continue
			}
			v, _ := l.VM(m)
			occ[v.Node]++
		}
		for i, p := range g.ParityNodes {
			if excludeParity[i] {
				continue
			}
			occ[p]++
		}
		for n := range planned[g.Index] {
			occ[n]++
		}
		return occ
	}
	pickTarget := func(g Group, occ map[int]int) (int, error) {
		best, bestLoad := -1, int(^uint(0)>>1)
		for t := 0; t < l.Nodes; t++ {
			if downSet[t] || occ[t] > 0 {
				continue
			}
			if load[t] < bestLoad {
				best, bestLoad = t, load[t]
			}
		}
		if best == -1 {
			return 0, fmt.Errorf("cluster: no orthogonal target for group %d", g.Index)
		}
		if planned[g.Index] == nil {
			planned[g.Index] = map[int]bool{}
		}
		planned[g.Index][best] = true
		return best, nil
	}

	for gi := range l.Groups {
		g := l.Groups[gi]
		movedVMs := map[string]bool{}
		movedParity := map[int]bool{}
		for {
			occ := occupied(g, movedVMs, movedParity)
			// Find a node carrying more than one element of this group.
			clash := -1
			for n, c := range occ {
				if c > 1 {
					clash = n
					break
				}
			}
			if clash == -1 {
				break
			}
			// Prefer moving a member VM off the clashing node; fall back to
			// a parity block.
			moved := false
			for _, m := range g.Members {
				v, _ := l.VM(m)
				if v.Node != clash || movedVMs[m] {
					continue
				}
				target, err := pickTarget(g, occ)
				if err != nil {
					return nil, err
				}
				plan.Steps = append(plan.Steps, Step{
					Kind: RestoreVM, VM: m, Group: gi, TargetNode: target,
				})
				movedVMs[m] = true
				load[clash]--
				load[target]++
				moved = true
				break
			}
			if moved {
				continue
			}
			for i, p := range g.ParityNodes {
				if p != clash || movedParity[i] {
					continue
				}
				target, err := pickTarget(g, occ)
				if err != nil {
					return nil, err
				}
				plan.Steps = append(plan.Steps, Step{
					Kind: RehomeParity, Group: gi, TargetNode: target,
					// For rebalance steps SourceNodes[0] carries the parity
					// index being moved (there is no reconstruction source).
					SourceNodes: []int{i},
				})
				movedParity[i] = true
				moved = true
				break
			}
			if !moved {
				return nil, fmt.Errorf("cluster: cannot resolve clash on node %d for group %d", clash, gi)
			}
		}
	}
	return plan, nil
}

// PlanKeeperEvacuation computes the parity moves that drain every parity
// block off one node — the placement response to the telemetry plane flagging
// that node as habitually slow: parity keepers absorb every member's delta
// stream, so a slow keeper stretches each round's prepare window by the whole
// chunk pipeline, while a slow member only stretches its own shipments.
//
// The plan reuses the rebalance Step vocabulary (RehomeParity with
// SourceNodes[0] = the parity index being moved) and preserves strict
// orthogonality: a target never carries another element of the same group,
// is never the avoided node, never down, and ties break toward the
// least-loaded node (VMs plus already-planned parity). Groups with no legal
// target make the plan fail — in the paper's minimal 4-node layout every
// other node already carries a member of the group, so evacuation is
// structurally impossible and callers must treat that as "cannot rebalance",
// not retry. An empty plan means the node keeps no parity.
func (l *Layout) PlanKeeperEvacuation(avoid int, down ...int) (*Plan, error) {
	if avoid < 0 || avoid >= l.Nodes {
		return nil, fmt.Errorf("cluster: evacuate node %d out of range [0,%d)", avoid, l.Nodes)
	}
	downSet := map[int]bool{avoid: true}
	for _, n := range down {
		if n < 0 || n >= l.Nodes {
			return nil, fmt.Errorf("cluster: down node %d out of range [0,%d)", n, l.Nodes)
		}
		downSet[n] = true
	}
	load := make([]int, l.Nodes)
	for _, v := range l.VMs {
		load[v.Node]++
	}
	plan := &Plan{}
	for n := range downSet {
		if n != avoid {
			plan.Down = append(plan.Down, n)
		}
	}
	sort.Ints(plan.Down)
	for gi := range l.Groups {
		g := l.Groups[gi]
		occ := map[int]bool{}
		for _, m := range g.Members {
			v, _ := l.VM(m)
			occ[v.Node] = true
		}
		for _, p := range g.ParityNodes {
			occ[p] = true
		}
		for i, p := range g.ParityNodes {
			if p != avoid {
				continue
			}
			best, bestLoad := -1, int(^uint(0)>>1)
			for t := 0; t < l.Nodes; t++ {
				if downSet[t] || occ[t] {
					continue
				}
				if load[t] < bestLoad {
					best, bestLoad = t, load[t]
				}
			}
			if best == -1 {
				return nil, fmt.Errorf("cluster: no orthogonal target to evacuate parity %d of group %d off node %d", i, gi, avoid)
			}
			occ[best] = true
			load[best]++
			plan.Steps = append(plan.Steps, Step{
				Kind: RehomeParity, Group: gi, TargetNode: best,
				SourceNodes: []int{i},
			})
		}
	}
	return plan, nil
}

// ApplyRebalance mutates the layout per a rebalance plan. For RehomeParity
// steps, SourceNodes[0] carries the parity index being moved.
func (l *Layout) ApplyRebalance(p *Plan) error {
	for _, s := range p.Steps {
		switch s.Kind {
		case RestoreVM:
			i, ok := l.vmIndex[s.VM]
			if !ok {
				return fmt.Errorf("cluster: rebalance moves unknown VM %q", s.VM)
			}
			l.VMs[i].Node = s.TargetNode
		case RehomeParity:
			if len(s.SourceNodes) != 1 {
				return fmt.Errorf("cluster: rebalance parity step missing index")
			}
			idx := s.SourceNodes[0]
			if s.Group < 0 || s.Group >= len(l.Groups) {
				return fmt.Errorf("cluster: rebalance re-homes parity of unknown group %d", s.Group)
			}
			g := &l.Groups[s.Group]
			if idx < 0 || idx >= len(g.ParityNodes) {
				return fmt.Errorf("cluster: parity index %d out of range for group %d", idx, s.Group)
			}
			g.ParityNodes[idx] = s.TargetNode
		default:
			return fmt.Errorf("cluster: unknown rebalance step kind %d", s.Kind)
		}
	}
	return l.Validate()
}
