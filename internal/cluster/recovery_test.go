package cluster

import (
	"testing"
	"testing/quick"
)

func TestPlanRecoverySingleNodeDVDC(t *testing.T) {
	l, _ := Paper12VM()
	plan, err := l.PlanRecovery(0)
	if err != nil {
		t.Fatal(err)
	}
	// In the 4-node paper layout every group spans all nodes, so recovery
	// must succeed but in degraded (orthogonality-violating) form.
	if !plan.Degraded {
		t.Error("4-node DVDC recovery should be degraded")
	}
	// Node 0 held 3 VMs and 1 parity block: 3 restore + 1 re-home steps.
	var restores, rehomes int
	for _, s := range plan.Steps {
		switch s.Kind {
		case RestoreVM:
			restores++
			if s.VM == "" {
				t.Error("restore step without VM name")
			}
		case RehomeParity:
			rehomes++
		}
		if s.TargetNode == 0 {
			t.Error("step targets the failed node")
		}
		if len(s.SourceNodes) == 0 {
			t.Error("step has no sources")
		}
		for _, src := range s.SourceNodes {
			if src == 0 {
				t.Error("step sources the failed node")
			}
		}
	}
	if restores != 3 || rehomes != 1 {
		t.Errorf("restores=%d rehomes=%d, want 3/1", restores, rehomes)
	}
}

func TestApplyRecoveryKeepsLayoutValid(t *testing.T) {
	for node := 0; node < 4; node++ {
		l, _ := Paper12VM()
		plan, err := l.PlanRecovery(node)
		if err != nil {
			t.Fatalf("node %d: %v", node, err)
		}
		if err := l.ApplyRecovery(plan); err != nil {
			t.Fatalf("node %d: apply: %v", node, err)
		}
		// Nothing may remain on the failed node.
		if got := l.VMsOnNode(node); len(got) != 0 {
			t.Errorf("node %d still hosts %v after recovery", node, got)
		}
		if got := l.ParityGroupsOnNode(node); len(got) != 0 {
			t.Errorf("node %d still holds parity %v after recovery", node, got)
		}
	}
}

func TestPlanRecoveryRejectsOverTolerance(t *testing.T) {
	l, _ := Paper12VM()
	if _, err := l.PlanRecovery(0, 1); err == nil {
		t.Error("double failure with single parity should be unplannable")
	}
}

func TestPlanRecoveryDoubleFailureWithTolerance2(t *testing.T) {
	// Groups of 4 with 2 parity blocks on 8 nodes: two spare nodes per
	// group, so even a double failure recovers without degradation.
	l, err := BuildDistributedGroups(8, 1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := l.PlanRecovery(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Degraded {
		t.Error("recovery with spare nodes should not be degraded")
	}
	if err := l.ApplyRecovery(plan); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 4} {
		if len(l.VMsOnNode(n)) != 0 || len(l.ParityGroupsOnNode(n)) != 0 {
			t.Errorf("node %d not evacuated", n)
		}
	}
}

func TestPlanRecoveryFirstShotIsDegraded(t *testing.T) {
	// First-shot: the single group spans every node, so re-placement is
	// necessarily degraded -- the planner must say so, not fail.
	l, _ := BuildFirstShot(4)
	plan, err := l.PlanRecovery(2)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Degraded {
		t.Error("first-shot recovery should be degraded")
	}
	if err := l.ApplyRecovery(plan); err != nil {
		t.Fatal(err)
	}
	if l.Validate() == nil {
		t.Error("degraded layout should fail strict validation")
	}
	if err := l.ValidateDegraded(); err != nil {
		t.Errorf("degraded layout should pass relaxed validation: %v", err)
	}
}

func TestPlanRecoveryOrthogonalWhenSpareExists(t *testing.T) {
	// Groups of 3 + 1 parity on 6 nodes: two spare nodes per group.
	l, err := BuildDistributedGroups(6, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := l.PlanRecovery(0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Degraded {
		t.Error("recovery with spare nodes should preserve orthogonality")
	}
	if err := l.ApplyRecovery(plan); err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Errorf("post-recovery layout should validate strictly: %v", err)
	}
}

func TestPlanRecoveryEmptyDownIsNoop(t *testing.T) {
	l, _ := Paper12VM()
	plan, err := l.PlanRecovery()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 0 {
		t.Errorf("empty failure set produced %d steps", len(plan.Steps))
	}
}

func TestPlanRecoveryBadNode(t *testing.T) {
	l, _ := Paper12VM()
	if _, err := l.PlanRecovery(-1); err == nil {
		t.Error("negative node should fail")
	}
	if _, err := l.PlanRecovery(99); err == nil {
		t.Error("out-of-range node should fail")
	}
}

func TestRecoveryBalancesLoad(t *testing.T) {
	// After recovering an 8-node DVDC cluster, no surviving node should be
	// wildly overloaded: the planner picks least-loaded targets.
	l, err := BuildDistributedGroups(8, 2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := l.PlanRecovery(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.ApplyRecovery(plan); err != nil {
		t.Fatal(err)
	}
	max, min := 0, 1<<30
	for n := 0; n < l.Nodes; n++ {
		if n == 3 {
			continue
		}
		c := len(l.VMsOnNode(n))
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if max-min > 2 {
		t.Errorf("post-recovery load imbalance: min=%d max=%d", min, max)
	}
}

// Property: for any DVDC layout (nodes in [4,10], stacks in [1,3]) and any
// single failed node, recovery plans apply cleanly and evacuate the node.
func TestQuickRecoveryAlwaysEvacuates(t *testing.T) {
	f := func(nRaw, sRaw, failRaw uint8) bool {
		nodes := int(nRaw%7) + 4
		stacks := int(sRaw%3) + 1
		l, err := BuildDistributed(nodes, stacks, 1)
		if err != nil {
			return false
		}
		fail := int(failRaw) % nodes
		plan, err := l.PlanRecovery(fail)
		if err != nil {
			return false
		}
		if err := l.ApplyRecovery(plan); err != nil {
			return false
		}
		return len(l.VMsOnNode(fail)) == 0 && len(l.ParityGroupsOnNode(fail)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStepKindString(t *testing.T) {
	if RestoreVM.String() != "restore-vm" || RehomeParity.String() != "rehome-parity" {
		t.Error("StepKind strings wrong")
	}
}
