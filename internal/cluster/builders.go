package cluster

import "fmt"

// BuildFirstShot constructs the Fig. 1 architecture: computeNodes nodes with
// one VM each, plus one extra node dedicated to parity, all VMs in a single
// RAID group. It is the naive translation of Plank's diskless checkpointing
// into the virtual domain.
func BuildFirstShot(computeNodes int) (*Layout, error) {
	if computeNodes < 2 {
		return nil, fmt.Errorf("cluster: first-shot needs >= 2 compute nodes, got %d", computeNodes)
	}
	l := &Layout{
		Arch:      FirstShot,
		Nodes:     computeNodes + 1,
		Tolerance: 1,
	}
	g := Group{Index: 0, ParityNodes: []int{computeNodes}}
	for n := 0; n < computeNodes; n++ {
		name := fmt.Sprintf("vm-%02d", n)
		l.VMs = append(l.VMs, VMPlacement{Name: name, Node: n, Group: 0})
		g.Members = append(g.Members, name)
	}
	l.Groups = []Group{g}
	l.buildIndex()
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}

// BuildDedicated constructs the Fig. 3 architecture: vmsPerNode VMs on each
// of computeNodes nodes, arranged in orthogonal groups (group r contains the
// r-th VM of every node), with every group's parity held by one dedicated
// checkpoint node that runs no VMs.
func BuildDedicated(computeNodes, vmsPerNode int) (*Layout, error) {
	if computeNodes < 2 {
		return nil, fmt.Errorf("cluster: dedicated needs >= 2 compute nodes, got %d", computeNodes)
	}
	if vmsPerNode < 1 {
		return nil, fmt.Errorf("cluster: need >= 1 VM per node, got %d", vmsPerNode)
	}
	parityNode := computeNodes
	l := &Layout{
		Arch:      Dedicated,
		Nodes:     computeNodes + 1,
		Tolerance: 1,
	}
	for r := 0; r < vmsPerNode; r++ {
		g := Group{Index: r, ParityNodes: []int{parityNode}}
		for n := 0; n < computeNodes; n++ {
			name := fmt.Sprintf("vm-%02d.%02d", n, r)
			l.VMs = append(l.VMs, VMPlacement{Name: name, Node: n, Group: r})
			g.Members = append(g.Members, name)
		}
		l.Groups = append(l.Groups, g)
	}
	l.buildIndex()
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}

// BuildDistributed constructs the Fig. 4 DVDC architecture. For a cluster of
// nodes physical machines and fault tolerance m (parity blocks per group),
// it lays out stacks*nodes groups of size nodes-m: group (s,i) places its
// members on consecutive nodes starting at i and its m parity blocks on the
// following nodes, everything mod nodes. Each stack gives every node
// nodes-m-... VMs; with stacks=1 and m=1 on 4 nodes this is exactly the
// paper's 12-VM configuration.
func BuildDistributed(nodes, stacks, tolerance int) (*Layout, error) {
	return BuildDistributedGroups(nodes, stacks, tolerance, nodes-tolerance)
}

// BuildDistributedGroups is BuildDistributed with an explicit group size.
// Smaller groups leave nodes free of any given group's elements, which is
// what lets PlanRecovery re-place a lost VM without degrading orthogonality;
// with groupSize+tolerance == nodes (the paper's Fig. 4) every recovery is
// necessarily degraded until the failed node returns.
func BuildDistributedGroups(nodes, stacks, tolerance, groupSize int) (*Layout, error) {
	if tolerance < 1 {
		return nil, fmt.Errorf("cluster: tolerance must be >= 1, got %d", tolerance)
	}
	if stacks < 1 {
		return nil, fmt.Errorf("cluster: stacks must be >= 1, got %d", stacks)
	}
	if groupSize < 1 {
		return nil, fmt.Errorf("cluster: group size must be >= 1, got %d", groupSize)
	}
	if groupSize+tolerance > nodes {
		return nil, fmt.Errorf("cluster: group size %d + tolerance %d exceeds %d nodes",
			groupSize, tolerance, nodes)
	}
	l := &Layout{
		Arch:      Distributed,
		Nodes:     nodes,
		Tolerance: tolerance,
	}
	for s := 0; s < stacks; s++ {
		for i := 0; i < nodes; i++ {
			gi := s*nodes + i
			g := Group{Index: gi}
			for j := 0; j < groupSize; j++ {
				node := (i + j) % nodes
				name := fmt.Sprintf("vm-%02d.%02d", gi, j)
				l.VMs = append(l.VMs, VMPlacement{Name: name, Node: node, Group: gi})
				g.Members = append(g.Members, name)
			}
			for j := 0; j < tolerance; j++ {
				g.ParityNodes = append(g.ParityNodes, (i+groupSize+j)%nodes)
			}
			l.Groups = append(l.Groups, g)
		}
	}
	l.buildIndex()
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}

// Paper12VM returns the exact configuration of the paper's Fig. 4 and its
// Fig. 5 analysis: four physical machines, twelve VMs in four orthogonal
// groups of three, parity rotated across all nodes.
func Paper12VM() (*Layout, error) { return BuildDistributed(4, 1, 1) }
