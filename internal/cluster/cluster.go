// Package cluster builds and validates the virtualized-cluster layouts the
// paper proposes: which VM lives on which physical node, how VMs are
// partitioned into RAID groups, and which node holds each group's parity.
//
// The paper's three architectures are all constructible:
//
//   - FirstShot (Fig. 1): one VM per compute node, one dedicated parity
//     node, a single RAID group spanning every VM.
//   - Dedicated (Fig. 3): several VMs per node arranged in orthogonal RAID
//     groups, with all parity concentrated on one dedicated checkpoint node.
//   - Distributed (Fig. 4, DVDC proper): orthogonal groups with parity
//     responsibility rotated across the compute nodes RAID-5 style, so every
//     node hosts working VMs and parity, and no dedicated hardware idles.
//
// Orthogonality is the load-bearing invariant: a RAID group may place at
// most one element (member VM or its parity block) on any physical node, so
// a node failure costs each group at most one element — recoverable with
// single parity. Validate enforces it; the constructors produce it.
package cluster

import (
	"fmt"
	"sort"
)

// Architecture names the layout families from the paper's figures.
type Architecture int

// Architectures.
const (
	FirstShot Architecture = iota
	Dedicated
	Distributed
)

// String returns the architecture name.
func (a Architecture) String() string {
	switch a {
	case FirstShot:
		return "first-shot"
	case Dedicated:
		return "dedicated-parity"
	case Distributed:
		return "distributed (DVDC)"
	default:
		return fmt.Sprintf("Architecture(%d)", int(a))
	}
}

// VMPlacement records where one VM lives and which group protects it.
type VMPlacement struct {
	Name  string
	Node  int
	Group int
}

// Group is one RAID group: member VMs plus the node(s) holding its parity.
type Group struct {
	Index       int
	Members     []string
	ParityNodes []int // one node per parity block; len = fault tolerance
}

// Layout is a complete cluster configuration.
type Layout struct {
	Arch      Architecture
	Nodes     int // total physical nodes, compute and dedicated alike
	Tolerance int // node failures each group survives (parity block count)
	VMs       []VMPlacement
	Groups    []Group

	vmIndex map[string]int // name -> index in VMs
}

func (l *Layout) buildIndex() {
	l.vmIndex = make(map[string]int, len(l.VMs))
	for i, v := range l.VMs {
		l.vmIndex[v.Name] = i
	}
}

// Clone returns a deep copy of the layout, so recovery experiments can
// mutate placements without touching the original.
func (l *Layout) Clone() *Layout {
	cp := &Layout{Arch: l.Arch, Nodes: l.Nodes, Tolerance: l.Tolerance}
	cp.VMs = append([]VMPlacement(nil), l.VMs...)
	cp.Groups = make([]Group, len(l.Groups))
	for i, g := range l.Groups {
		cp.Groups[i] = Group{
			Index:       g.Index,
			Members:     append([]string(nil), g.Members...),
			ParityNodes: append([]int(nil), g.ParityNodes...),
		}
	}
	cp.buildIndex()
	return cp
}

// VM returns the placement record for a VM name.
func (l *Layout) VM(name string) (VMPlacement, bool) {
	i, ok := l.vmIndex[name]
	if !ok {
		return VMPlacement{}, false
	}
	return l.VMs[i], true
}

// VMsOnNode returns the names of VMs hosted by node n, in layout order.
func (l *Layout) VMsOnNode(n int) []string {
	var out []string
	for _, v := range l.VMs {
		if v.Node == n {
			out = append(out, v.Name)
		}
	}
	return out
}

// ParityGroupsOnNode returns the indices of groups whose parity node n holds.
func (l *Layout) ParityGroupsOnNode(n int) []int {
	var out []int
	for _, g := range l.Groups {
		for _, p := range g.ParityNodes {
			if p == n {
				out = append(out, g.Index)
				break
			}
		}
	}
	return out
}

// ComputeNodes returns the indices of nodes that host at least one VM.
func (l *Layout) ComputeNodes() []int {
	seen := map[int]bool{}
	for _, v := range l.VMs {
		seen[v.Node] = true
	}
	out := make([]int, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Validate checks structural sanity and the orthogonality invariant: within
// one group, member VMs and parity blocks all occupy distinct nodes.
func (l *Layout) Validate() error { return l.validate(true) }

// ValidateDegraded checks structural sanity but permits orthogonality
// violations, the state a layout is in after a degraded recovery.
func (l *Layout) ValidateDegraded() error { return l.validate(false) }

func (l *Layout) validate(strict bool) error {
	if l.Nodes < 2 {
		return fmt.Errorf("cluster: need at least 2 nodes, got %d", l.Nodes)
	}
	if l.Tolerance < 1 {
		return fmt.Errorf("cluster: tolerance must be >= 1, got %d", l.Tolerance)
	}
	if len(l.VMs) == 0 {
		return fmt.Errorf("cluster: layout has no VMs")
	}
	names := map[string]int{}
	for i, v := range l.VMs {
		if v.Name == "" {
			return fmt.Errorf("cluster: VM %d has empty name", i)
		}
		if prev, dup := names[v.Name]; dup {
			return fmt.Errorf("cluster: duplicate VM name %q (indices %d, %d)", v.Name, prev, i)
		}
		names[v.Name] = i
		if v.Node < 0 || v.Node >= l.Nodes {
			return fmt.Errorf("cluster: VM %q on node %d, out of range [0,%d)", v.Name, v.Node, l.Nodes)
		}
		if v.Group < 0 || v.Group >= len(l.Groups) {
			return fmt.Errorf("cluster: VM %q in group %d, out of range [0,%d)", v.Name, v.Group, len(l.Groups))
		}
	}
	grouped := map[string]bool{}
	for gi, g := range l.Groups {
		if g.Index != gi {
			return fmt.Errorf("cluster: group %d has index %d", gi, g.Index)
		}
		if len(g.Members) == 0 {
			return fmt.Errorf("cluster: group %d is empty", gi)
		}
		if len(g.ParityNodes) != l.Tolerance {
			return fmt.Errorf("cluster: group %d has %d parity nodes, tolerance is %d",
				gi, len(g.ParityNodes), l.Tolerance)
		}
		used := map[int]string{} // node -> what occupies it within this group
		for _, name := range g.Members {
			vi, ok := names[name]
			if !ok {
				return fmt.Errorf("cluster: group %d member %q is not a VM", gi, name)
			}
			v := l.VMs[vi]
			if v.Group != gi {
				return fmt.Errorf("cluster: VM %q in group %d but listed as member of %d", name, v.Group, gi)
			}
			if grouped[name] {
				return fmt.Errorf("cluster: VM %q is a member of multiple groups", name)
			}
			grouped[name] = true
			if prev, clash := used[v.Node]; clash && strict {
				return fmt.Errorf("cluster: group %d not orthogonal: %q and %q share node %d",
					gi, prev, name, v.Node)
			}
			used[v.Node] = name
		}
		for _, p := range g.ParityNodes {
			if p < 0 || p >= l.Nodes {
				return fmt.Errorf("cluster: group %d parity node %d out of range", gi, p)
			}
			if prev, clash := used[p]; clash && strict {
				return fmt.Errorf("cluster: group %d not orthogonal: parity and %q share node %d",
					gi, prev, p)
			}
			used[p] = fmt.Sprintf("parity[%d]", gi)
		}
	}
	for name := range names {
		if !grouped[name] {
			return fmt.Errorf("cluster: VM %q belongs to no group's member list", name)
		}
	}
	return nil
}

// LostElements counts, per group, how many elements (member VMs + parity
// blocks) live on the given failed nodes.
func (l *Layout) LostElements(failedNodes ...int) map[int]int {
	failed := map[int]bool{}
	for _, n := range failedNodes {
		failed[n] = true
	}
	lost := map[int]int{}
	for _, v := range l.VMs {
		if failed[v.Node] {
			lost[v.Group]++
		}
	}
	for _, g := range l.Groups {
		for _, p := range g.ParityNodes {
			if failed[p] {
				lost[g.Index]++
			}
		}
	}
	return lost
}

// Survives reports whether every group can recover from the simultaneous
// failure of the given nodes: no group may lose more elements than the
// layout's tolerance.
func (l *Layout) Survives(failedNodes ...int) bool {
	for _, n := range l.LostElements(failedNodes...) {
		if n > l.Tolerance {
			return false
		}
	}
	return true
}
