package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the full exposition byte-for-byte: family
// ordering (sorted by name), series ordering within a family (sorted by
// rendered labels), label escaping, histogram bucket rendering, and mounted
// counter sets.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("dvdc_rounds_total", "result", "committed").Add(3)
	r.Counter("dvdc_rounds_total", "result", "aborted").Inc()
	r.Gauge("dvdc_pool_open_conns", "peer", "node1").Set(2)
	r.GaugeFunc("dvdc_alive_nodes", func() float64 { return 4 })
	r.Counter("dvdc_escape_total", "path", "a\\b\"c\nd").Inc()

	h := r.Histogram("dvdc_rpc_latency_seconds", []float64{0.001, 0.01, 0.1}, "peer", "node1")
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(0.005)
	h.Observe(0.5)

	cs := NewCounterSet()
	cs.Add("drop", 2)
	cs.Add("corrupt", 1)
	r.MountCounterSet("dvdc_chaos_faults_total", "kind", cs)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE dvdc_alive_nodes gauge
dvdc_alive_nodes 4
# TYPE dvdc_chaos_faults_total counter
dvdc_chaos_faults_total{kind="corrupt"} 1
dvdc_chaos_faults_total{kind="drop"} 2
# TYPE dvdc_escape_total counter
dvdc_escape_total{path="a\\b\"c\nd"} 1
# TYPE dvdc_pool_open_conns gauge
dvdc_pool_open_conns{peer="node1"} 2
# TYPE dvdc_rounds_total counter
dvdc_rounds_total{result="aborted"} 1
dvdc_rounds_total{result="committed"} 3
# TYPE dvdc_rpc_latency_seconds histogram
dvdc_rpc_latency_seconds_bucket{peer="node1",le="0.001"} 1
dvdc_rpc_latency_seconds_bucket{peer="node1",le="0.01"} 3
dvdc_rpc_latency_seconds_bucket{peer="node1",le="0.1"} 3
dvdc_rpc_latency_seconds_bucket{peer="node1",le="+Inf"} 4
dvdc_rpc_latency_seconds_sum{peer="node1"} 0.5105
dvdc_rpc_latency_seconds_count{peer="node1"} 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Stability: a second render must be byte-identical.
	var b2 strings.Builder
	r.WritePrometheus(&b2)
	if b2.String() != b.String() {
		t.Error("exposition not deterministic across renders")
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		3:       "3",
		-7:      "-7",
		0.5:     "0.5",
		0.0001:  "0.0001",
		1e18:    "1e+18",
		2.5e-05: "2.5e-05",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestObsServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dvdc_up_total").Inc()
	tr := NewTracer(8)
	tr.Start(SpanContext{}, "round", "coord").Finish()

	srv, err := Serve("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, "dvdc_up_total 1") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body, _ := get("/healthz"); body != "ok\n" {
		t.Errorf("/healthz = %q", body)
	}
	body, ct = get("/spans")
	if ct != "application/json" || !strings.Contains(body, `"name":"round"`) {
		t.Errorf("/spans = %q (content type %q)", body, ct)
	}
}
