package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestFlightRecorderFeeds(t *testing.T) {
	rec := NewFlightRecorder(16)
	rec.Note("round-start", "round", "3")
	rec.RPC("node1", "MsgPrepare", 5*time.Millisecond, 42, nil)
	rec.RPC("node2", "MsgCommit", 7*time.Millisecond, 42, errors.New("boom"))
	rec.Chaos("drop", "-1->2", "armed")
	rec.Span(Span{Name: "round", Lane: "coord", Trace: 42,
		Start: time.Now().Add(-time.Millisecond), End: time.Now(),
		Attrs: map[string]string{"peer": "node3"}})

	es := rec.Entries()
	if len(es) != 5 {
		t.Fatalf("entries = %d, want 5", len(es))
	}
	if es[0].Kind != "note" || es[0].Attrs["round"] != "3" {
		t.Fatalf("note entry = %+v", es[0])
	}
	if es[1].Kind != "rpc" || es[1].Peer != "node1" || es[1].Err != "" {
		t.Fatalf("rpc entry = %+v", es[1])
	}
	if es[2].Err != "boom" {
		t.Fatalf("errored rpc entry = %+v", es[2])
	}
	if es[3].Kind != "chaos" || es[3].Name != "drop" {
		t.Fatalf("chaos entry = %+v", es[3])
	}
	if es[4].Kind != "span" || es[4].Peer != "node3" || es[4].Trace != 42 {
		t.Fatalf("span entry = %+v", es[4])
	}
	for _, e := range es {
		if e.Time.IsZero() {
			t.Fatalf("entry %+v missing timestamp", e)
		}
	}
	if line := es[2].String(); !strings.Contains(line, "ERR=boom") || !strings.Contains(line, "peer=node2") {
		t.Fatalf("rendered entry %q missing error/peer", line)
	}
}

func TestFlightRecorderDumpRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	reg.Counter("dvdc_test_total").Add(7)

	rec := NewFlightRecorder(8)
	rec.SetRegistry(reg)
	rec.SetMeta("seed", int64(99))
	for i := 0; i < 12; i++ { // overflow the ring: 4 evicted
		rec.RPC("node0", "MsgStep", time.Millisecond, 0, nil)
	}
	path, err := rec.Dump(dir, "unit test!")
	if err != nil {
		t.Fatalf("Dump: %v", err)
	}
	if !strings.Contains(path, "postmortem-unit-test-") {
		t.Fatalf("bundle path %q not slugged", path)
	}
	if rec.Dumps() != 1 {
		t.Fatalf("Dumps = %d, want 1", rec.Dumps())
	}

	b, err := ReadBundle(path)
	if err != nil {
		t.Fatalf("ReadBundle: %v", err)
	}
	if b.Meta.Reason != "unit test!" || b.Meta.Entries != 8 || b.Meta.Dropped != 4 {
		t.Fatalf("meta = %+v", b.Meta)
	}
	if v, ok := b.Meta.Meta["seed"]; !ok || v != float64(99) { // JSON numbers decode as float64
		t.Fatalf("meta seed = %v", v)
	}
	if len(b.Entries) != 8 {
		t.Fatalf("entries = %d, want 8", len(b.Entries))
	}
	if !strings.Contains(b.Metrics, "dvdc_test_total 7") {
		t.Fatalf("metrics snapshot missing counter:\n%s", b.Metrics)
	}

	found, err := FindBundles(dir)
	if err != nil || len(found) != 1 || found[0] != path {
		t.Fatalf("FindBundles = %v, %v", found, err)
	}
}

func TestFlightRecorderAutoDumpDisabled(t *testing.T) {
	rec := NewFlightRecorder(4)
	rec.Note("x")
	path, err := rec.AutoDump("reason")
	if err != nil || path != "" {
		t.Fatalf("AutoDump without dir = (%q, %v), want no-op", path, err)
	}
	if rec.Dumps() != 0 {
		t.Fatalf("Dumps = %d, want 0", rec.Dumps())
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var rec *FlightRecorder
	rec.Note("x")
	rec.RPC("p", "m", 0, 0, nil)
	rec.Span(Span{})
	rec.Chaos("k", "p", "")
	rec.SetDumpDir("/nope")
	rec.SetRegistry(nil)
	rec.SetMeta("k", 1)
	if rec.Entries() != nil || rec.Dropped() != 0 || rec.Dumps() != 0 {
		t.Fatal("nil recorder must be inert")
	}
	if path, err := rec.AutoDump("r"); path != "" || err != nil {
		t.Fatal("nil AutoDump must be a no-op")
	}
}
