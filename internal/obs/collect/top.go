package collect

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dvdc/internal/obs"
)

// SourceStatus is one scraped endpoint's health as the top view shows it.
type SourceStatus struct {
	Addr      string
	Up        bool
	Err       string // scrape failure, when !Up
	OpenSpans int64  // dvdc_obs_open_spans at scrape time
	Dropped   int64  // dvdc_spans_dropped_total at scrape time
	Spans     int    // spans held from this source's last scrape

	DedupHits  int64 // dvdc_dedup_hits_total: chunk ships skipped by page-hash dedup
	DedupSaved int64 // dvdc_dedup_bytes_saved_total: payload bytes those skips avoided
	DedupInval int64 // dvdc_dedup_invalidations_total: cache entries dropped on rewrite
}

// TopView is everything `dvdcctl top` renders for one refresh: per-source
// scrape health, the latest merged round tree's verdict, the per-lane time
// breakdown with the straggler marked, and habitual latency outliers. It is
// plain data so rendering is a pure function (golden-testable).
type TopView struct {
	Sources []SourceStatus

	Trace     uint64
	Epoch     string // root span's epoch attr ("" when unknown)
	Wall      time.Duration
	Closed    bool   // merged tree verified single-rooted and closed
	VerifyErr string // why not, when !Closed
	Attr      *Attribution

	Outliers      []string
	ClusterMedian time.Duration
	PeerP99       map[string]time.Duration
}

// BuildTopView scrapes every source into c, merges, picks the latest round
// trace, verifies it, and runs attribution. outliers may be nil.
func BuildTopView(c *Collector, sources []string, outliers *OutlierTracker) TopView {
	var v TopView
	for _, addr := range sources {
		st := SourceStatus{Addr: addr}
		n, err := c.ScrapeSpans(addr)
		if err != nil {
			st.Err = err.Error()
		} else {
			st.Up = true
			st.Spans = n
			if exp, merr := c.ScrapeMetrics(addr); merr == nil {
				if f, ok := MetricValue(exp, "dvdc_obs_open_spans"); ok {
					st.OpenSpans = int64(f)
				}
				if f, ok := MetricValue(exp, "dvdc_spans_dropped_total"); ok {
					st.Dropped = int64(f)
				}
				if f, ok := MetricValue(exp, "dvdc_dedup_hits_total"); ok {
					st.DedupHits = int64(f)
				}
				if f, ok := MetricValue(exp, "dvdc_dedup_bytes_saved_total"); ok {
					st.DedupSaved = int64(f)
				}
				if f, ok := MetricValue(exp, "dvdc_dedup_invalidations_total"); ok {
					st.DedupInval = int64(f)
				}
			}
		}
		v.Sources = append(v.Sources, st)
	}
	if outliers != nil {
		outliers.ObserveSpans(c.Spans())
	}
	// A direct-driven session roots the trace at the "round" span; a
	// service-driven one wraps it in the reconciler's "reconcile" span.
	v.Trace = c.LatestRound("round")
	if v.Trace == 0 {
		v.Trace = c.LatestRound("reconcile")
	}
	if v.Trace != 0 {
		t := c.Tree(v.Trace)
		v.Wall = t.Wall()
		if err := t.Verify(); err != nil {
			v.VerifyErr = err.Error()
		} else {
			v.Closed = true
		}
		v.Attr = Attribute(t)
		if r := t.Root(); r != nil {
			v.Epoch = r.Attrs["epoch"]
		}
		if v.Epoch == "" {
			// Reconcile roots carry no epoch; read it off the round child.
			for _, s := range t.Spans {
				if s.Name == "round" && s.Attrs["epoch"] != "" {
					v.Epoch = s.Attrs["epoch"]
					break
				}
			}
		}
	}
	if outliers != nil {
		v.Outliers = outliers.Outliers()
		v.ClusterMedian = outliers.ClusterMedian()
		v.PeerP99 = map[string]time.Duration{}
		for _, p := range outliers.Peers() {
			v.PeerP99[p] = outliers.P99(p)
		}
	}
	return v
}

// RenderTop renders the live cluster view as fixed-width ASCII. Pure: the
// same view renders to the same bytes.
func RenderTop(v TopView, width int) string {
	if width < 40 {
		width = 40
	}
	var b strings.Builder

	total := 0
	for _, s := range v.Sources {
		total += s.Spans
	}
	fmt.Fprintf(&b, "dvdc cluster telemetry — %d source(s)\n", len(v.Sources))
	if len(v.Sources) > 0 {
		fmt.Fprintf(&b, "  %-24s %-4s %6s %9s %7s %7s %9s %6s\n",
			"SOURCE", "UP", "OPEN", "DROPPED", "SPANS", "DEDUP", "SAVED", "INVAL")
		for _, s := range v.Sources {
			up := "ok"
			if !s.Up {
				up = "DOWN"
			}
			fmt.Fprintf(&b, "  %-24s %-4s %6d %9d %7d %7d %9s %6d\n",
				s.Addr, up, s.OpenSpans, s.Dropped, s.Spans, s.DedupHits, humanBytes(s.DedupSaved), s.DedupInval)
			if s.Err != "" {
				fmt.Fprintf(&b, "      %s\n", s.Err)
			}
		}
	}

	b.WriteByte('\n')
	if v.Trace == 0 {
		b.WriteString("no round trace collected yet\n")
		return b.String()
	}
	verdict := "CLOSED"
	if !v.Closed {
		verdict = "OPEN"
	}
	fmt.Fprintf(&b, "round trace %016x", v.Trace)
	if v.Epoch != "" {
		fmt.Fprintf(&b, "  epoch %s", v.Epoch)
	}
	fmt.Fprintf(&b, "  wall %v  [%s]\n", v.Wall.Round(time.Microsecond), verdict)
	if v.VerifyErr != "" {
		fmt.Fprintf(&b, "  verify: %s\n", v.VerifyErr)
	}

	if v.Attr != nil && len(v.Attr.Lanes) > 0 {
		barW := width - 40
		if barW < 8 {
			barW = 8
		}
		fmt.Fprintf(&b, "  %-8s %-12s %5s  %s\n", "LANE", "BUSY", "SPANS", "SHARE")
		for _, lt := range v.Attr.Lanes {
			mark := " "
			if lt.Lane == v.Attr.Straggler {
				mark = "*"
			}
			bar := ""
			if v.Wall > 0 {
				n := int(float64(barW) * float64(lt.Busy) / float64(v.Wall))
				if n > barW {
					n = barW
				}
				if n < 1 && lt.Busy > 0 {
					n = 1
				}
				bar = strings.Repeat("#", n)
			}
			line := fmt.Sprintf(" %s%-8s %-12v %5d  %s", mark, lt.Lane, lt.Busy.Round(time.Microsecond), lt.Spans, bar)
			b.WriteString(strings.TrimRight(line, " "))
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "  %s\n", v.Attr.String())
	}

	if len(v.PeerP99) > 0 {
		peers := make([]string, 0, len(v.PeerP99))
		for p := range v.PeerP99 {
			peers = append(peers, p)
		}
		sort.Strings(peers)
		fmt.Fprintf(&b, "\n  peer p99 (cluster median %v):\n", v.ClusterMedian.Round(time.Microsecond))
		flagged := map[string]bool{}
		for _, p := range v.Outliers {
			flagged[p] = true
		}
		for _, p := range peers {
			note := ""
			if flagged[p] {
				note = "  << OUTLIER"
			}
			fmt.Fprintf(&b, "    %-8s %v%s\n", p, v.PeerP99[p].Round(time.Microsecond), note)
		}
	}
	return b.String()
}

// RenderPostmortem renders a flight-recorder bundle for `dvdcctl postmortem`:
// header, entry-kind and error tallies, the last tail entries, and every
// errored entry. Pure: rendering depends only on the bundle and tail.
func RenderPostmortem(b *obs.Bundle, tail int) string {
	if tail <= 0 {
		tail = 40
	}
	var w strings.Builder
	fmt.Fprintf(&w, "postmortem bundle %s\n", b.Path)
	fmt.Fprintf(&w, "  reason:  %s\n", b.Meta.Reason)
	fmt.Fprintf(&w, "  time:    %s\n", b.Meta.Time.Format(time.RFC3339Nano))
	fmt.Fprintf(&w, "  pid:     %d\n", b.Meta.HostedPID)
	fmt.Fprintf(&w, "  entries: %d (%d evicted before dump)\n", b.Meta.Entries, b.Meta.Dropped)
	if len(b.Meta.Meta) > 0 {
		keys := make([]string, 0, len(b.Meta.Meta))
		for k := range b.Meta.Meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&w, "  %s: %v\n", k, b.Meta.Meta[k])
		}
	}

	kinds := map[string]int{}
	errs := 0
	var errored []obs.FlightEntry
	for _, e := range b.Entries {
		kinds[e.Kind]++
		if e.Err != "" {
			errs++
			errored = append(errored, e)
		}
	}
	kindKeys := make([]string, 0, len(kinds))
	for k := range kinds {
		kindKeys = append(kindKeys, k)
	}
	sort.Strings(kindKeys)
	w.WriteString("\n  kinds:")
	for _, k := range kindKeys {
		fmt.Fprintf(&w, " %s=%d", k, kinds[k])
	}
	fmt.Fprintf(&w, "  errors=%d\n", errs)

	start := len(b.Entries) - tail
	if start < 0 {
		start = 0
	}
	fmt.Fprintf(&w, "\nlast %d entries:\n", len(b.Entries)-start)
	for _, e := range b.Entries[start:] {
		fmt.Fprintf(&w, "  %s\n", e.String())
	}

	if len(errored) > 0 {
		const maxErrs = 10
		if len(errored) > maxErrs {
			errored = errored[len(errored)-maxErrs:]
		}
		fmt.Fprintf(&w, "\nerrored entries (last %d):\n", len(errored))
		for _, e := range errored {
			fmt.Fprintf(&w, "  %s\n", e.String())
		}
	}
	if b.Metrics != "" {
		fmt.Fprintf(&w, "\nmetrics snapshot: %d series lines (see metrics.prom)\n", countSamples(b.Metrics))
	}
	return w.String()
}

// humanBytes renders a byte count with a binary-prefix unit, compact enough
// for a fixed-width column.
func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// countSamples counts non-comment sample lines in a Prometheus exposition.
func countSamples(exposition string) int {
	n := 0
	for _, line := range strings.Split(exposition, "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			n++
		}
	}
	return n
}
