package collect

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"dvdc/internal/obs"
)

// LaneTime is one lane's (one cluster member's) share of a round.
type LaneTime struct {
	Lane  string
	Busy  time.Duration // self time: span durations minus child durations
	Spans int
}

// PathStep is one hop of a round's critical path.
type PathStep struct {
	Name string
	Lane string
	Self time.Duration // this span's duration not covered by its children
	Dur  time.Duration
}

// Attribution is the per-round answer to "where did the wall-clock go": the
// critical path through the merged tree, per-lane self-time totals, and the
// named straggler — the non-coordinator lane owning the largest self-time on
// the critical path. A chaos delay fault on one peer's link shows up here as
// that peer's rpc span dominating the path.
type Attribution struct {
	Trace    uint64
	Wall     time.Duration
	RootLane string

	Straggler     string        // lane of the slowest member ("" when nothing off the root lane)
	StragglerSpan string        // span name the straggler's time sat in
	StragglerDur  time.Duration // that span's critical-path self time

	Lanes []LaneTime // descending by Busy, ties by lane name
	Path  []PathStep // root first
}

// laneOf resolves the lane a span's time belongs to: an explicit "peer"
// attribute wins (pool rpc spans run on the caller but wait on the peer),
// then the span's own lane, then the lane inherited from its parent.
func laneOf(s obs.Span, inherited string) string {
	if p := s.Attrs["peer"]; p != "" {
		return p
	}
	if s.Lane != "" {
		return s.Lane
	}
	return inherited
}

// Attribute runs critical-path analysis over a merged round tree. Returns
// nil when the tree has no single root. Deterministic for a given tree.
func Attribute(t *Tree) *Attribution {
	if t == nil {
		return nil
	}
	root := t.Root()
	if root == nil {
		return nil
	}
	a := &Attribution{Trace: t.Trace, Wall: root.Duration(), RootLane: root.Lane}

	// Per-lane self time over the whole tree. Self time clamps at zero:
	// parallel children (fan-out) can legitimately sum past the parent.
	lanes := map[string]*LaneTime{}
	var account func(i int, inherited string)
	account = func(i int, inherited string) {
		s := t.Spans[i]
		lane := laneOf(s, inherited)
		var childSum time.Duration
		for _, ci := range t.Children(s.ID) {
			childSum += t.Spans[ci].Duration()
			// Children inherit the span's own lane, not the peer attribution:
			// a handler span under an rpc span owns its own time.
			inh := s.Lane
			if inh == "" {
				inh = inherited
			}
			account(ci, inh)
		}
		self := s.Duration() - childSum
		if self < 0 {
			self = 0
		}
		lt := lanes[lane]
		if lt == nil {
			lt = &LaneTime{Lane: lane}
			lanes[lane] = lt
		}
		lt.Busy += self
		lt.Spans++
	}
	account(t.root, root.Lane)
	for _, lt := range lanes {
		a.Lanes = append(a.Lanes, *lt)
	}
	sort.Slice(a.Lanes, func(i, j int) bool {
		if a.Lanes[i].Busy != a.Lanes[j].Busy {
			return a.Lanes[i].Busy > a.Lanes[j].Busy
		}
		return a.Lanes[i].Lane < a.Lanes[j].Lane
	})

	// Critical path: from the root, repeatedly descend into the child that
	// finished last (ties broken by span id, so the path is deterministic).
	i, inherited := t.root, root.Lane
	for {
		s := t.Spans[i]
		lane := laneOf(s, inherited)
		var childSum time.Duration
		kids := t.Children(s.ID)
		for _, ci := range kids {
			childSum += t.Spans[ci].Duration()
		}
		self := s.Duration() - childSum
		if self < 0 {
			self = 0
		}
		a.Path = append(a.Path, PathStep{Name: s.Name, Lane: lane, Self: self, Dur: s.Duration()})
		if len(kids) == 0 {
			break
		}
		next := kids[0]
		for _, ci := range kids[1:] {
			cs, ns := t.Spans[ci], t.Spans[next]
			if cs.End.After(ns.End) || (cs.End.Equal(ns.End) && cs.ID > ns.ID) {
				next = ci
			}
		}
		if s.Lane != "" {
			inherited = s.Lane
		}
		i = next
	}

	// The straggler is the critical-path step off the root's lane holding the
	// most self time: the member the round actually waited on.
	for _, st := range a.Path {
		if st.Lane == a.RootLane || st.Lane == "" {
			continue
		}
		if st.Self > a.StragglerDur {
			a.Straggler, a.StragglerSpan, a.StragglerDur = st.Lane, st.Name, st.Self
		}
	}
	return a
}

// Export publishes the attribution to reg: increments
// dvdc_round_straggler_total{node=...} and sets dvdc_round_straggler_seconds
// to the straggler's critical-path self time. No-op without a straggler.
func (a *Attribution) Export(reg *obs.Registry) {
	if a == nil || reg == nil || a.Straggler == "" {
		return
	}
	reg.Counter("dvdc_round_straggler_total", "node", a.Straggler).Inc()
	// Gauges are integer-valued here; a func series carries the float seconds.
	sec := a.StragglerDur.Seconds()
	reg.GaugeFunc("dvdc_round_straggler_seconds", func() float64 { return sec })
}

// String renders a one-line verdict ("straggler node2 (rpc MsgCommit, 41ms of
// 50ms round)"); "balanced round" when no straggler stood out.
func (a *Attribution) String() string {
	if a == nil {
		return "no attribution"
	}
	if a.Straggler == "" {
		return fmt.Sprintf("balanced round (%v wall)", a.Wall.Round(time.Microsecond))
	}
	return fmt.Sprintf("straggler %s (%s, %v of %v round)",
		a.Straggler, a.StragglerSpan,
		a.StragglerDur.Round(time.Microsecond), a.Wall.Round(time.Microsecond))
}

// OutlierTracker keeps a rolling latency window per peer and flags peers
// whose p99 drifts past a multiple of the cluster median p99 — the
// cross-sectional complement to per-round attribution: a straggler names who
// slowed one round, an outlier names who is slow habitually.
type OutlierTracker struct {
	mu     sync.Mutex
	window int
	factor float64
	minN   int

	byPeer map[string]*obs.Ring[time.Duration]
	order  []string
	reg    *obs.Registry
}

// NewOutlierTracker builds a tracker keeping the last window samples per peer
// (<= 0 picks 256) and flagging peers whose p99 exceeds factor x the cluster
// median p99 (factor <= 1 picks 3). Safe for concurrent use — the exported
// gauge funcs read it from the /metrics handler's goroutine.
func NewOutlierTracker(window int, factor float64) *OutlierTracker {
	if window <= 0 {
		window = 256
	}
	if factor <= 1 {
		factor = 3
	}
	return &OutlierTracker{window: window, factor: factor, minN: 8, byPeer: map[string]*obs.Ring[time.Duration]{}}
}

// SetRegistry attaches a registry; each peer's rolling p99 and outlier flag
// are exported as dvdc_peer_latency_p99_seconds{peer=...} and
// dvdc_peer_latency_outlier{peer=...} gauge funcs bound on first sight.
func (o *OutlierTracker) SetRegistry(reg *obs.Registry) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.reg = reg
	o.mu.Unlock()
}

// Observe records one latency sample for peer.
func (o *OutlierTracker) Observe(peer string, d time.Duration) {
	if o == nil || peer == "" {
		return
	}
	o.mu.Lock()
	r := o.byPeer[peer]
	var reg *obs.Registry
	if r == nil {
		r = obs.NewRing[time.Duration](o.window)
		o.byPeer[peer] = r
		o.order = append(o.order, peer)
		sort.Strings(o.order)
		reg = o.reg
	}
	o.mu.Unlock()
	if reg != nil {
		p := peer
		reg.GaugeFunc("dvdc_peer_latency_p99_seconds", func() float64 {
			return o.P99(p).Seconds()
		}, "peer", p)
		reg.GaugeFunc("dvdc_peer_latency_outlier", func() float64 {
			if o.IsOutlier(p) {
				return 1
			}
			return 0
		}, "peer", p)
	}
	r.Push(d)
}

// ObserveSpans feeds every pool rpc span (name "rpc ...", attr "peer") from a
// merged span set into the per-peer windows.
func (o *OutlierTracker) ObserveSpans(spans []obs.Span) {
	if o == nil {
		return
	}
	for _, s := range spans {
		if p := s.Attrs["peer"]; p != "" && len(s.Name) > 4 && s.Name[:4] == "rpc " {
			o.Observe(p, s.Duration())
		}
	}
}

// ObserveDataSpans feeds only bulk data-plane rpc spans — delta and
// delta-chunk ships — into the per-peer windows. Control rpc spans measure
// the remote handler's whole duration, and a member's prepare handler
// includes its own downstream ship stalls: one slow keeper smears into every
// shipping member's control latency, the cluster median chases the fault,
// and no peer ever crosses the outlier factor. A data ship instead
// attributes a transfer to the peer that absorbed it, which is the signal
// that isolates a slow keeper from the members it slows down. Feed this
// (not ObserveSpans) when the windows drive placement decisions.
func (o *OutlierTracker) ObserveDataSpans(spans []obs.Span) {
	if o == nil {
		return
	}
	for _, s := range spans {
		if s.Name != "rpc delta" && s.Name != "rpc delta-chunk" {
			continue
		}
		if p := s.Attrs["peer"]; p != "" {
			o.Observe(p, s.Duration())
		}
	}
}

// Remove forgets a peer's rolling window — a node decommissioned, or
// renumbered after recovery, must stop skewing the cluster median. Gauge
// funcs already exported for the peer keep their series but read zero from
// then on; re-observing the peer starts a fresh window (and rebinds the
// funcs — GaugeFunc replaces).
func (o *OutlierTracker) Remove(peer string) {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.byPeer[peer]; !ok {
		return
	}
	delete(o.byPeer, peer)
	for i, p := range o.order {
		if p == peer {
			o.order = append(o.order[:i], o.order[i+1:]...)
			break
		}
	}
}

// Peers lists tracked peers, sorted.
func (o *OutlierTracker) Peers() []string {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]string(nil), o.order...)
}

// P99 returns peer's rolling 99th percentile latency (0 when unseen).
func (o *OutlierTracker) P99(peer string) time.Duration {
	if o == nil {
		return 0
	}
	o.mu.Lock()
	r := o.byPeer[peer]
	o.mu.Unlock()
	if r == nil {
		return 0
	}
	samples := r.Snapshot()
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := (len(samples)*99 + 99) / 100
	if idx > len(samples) {
		idx = len(samples)
	}
	return samples[idx-1]
}

// ClusterMedian returns the median of per-peer p99s — the cluster's "normal".
func (o *OutlierTracker) ClusterMedian() time.Duration {
	peers := o.Peers()
	if len(peers) == 0 {
		return 0
	}
	p99s := make([]time.Duration, 0, len(peers))
	for _, p := range peers {
		p99s = append(p99s, o.P99(p))
	}
	sort.Slice(p99s, func(i, j int) bool { return p99s[i] < p99s[j] })
	// Lower-middle on even counts: in a two-peer cluster the upper-middle
	// would be the slow peer itself, which could then never be flagged.
	return p99s[(len(p99s)-1)/2]
}

// IsOutlier reports whether peer's p99 exceeds factor x the cluster median
// (false until the peer has minN samples, so startup noise never flags).
func (o *OutlierTracker) IsOutlier(peer string) bool {
	if o == nil {
		return false
	}
	o.mu.Lock()
	r := o.byPeer[peer]
	o.mu.Unlock()
	if r == nil || r.Len() < o.minN {
		return false
	}
	med := o.ClusterMedian()
	if med <= 0 {
		return false
	}
	return float64(o.P99(peer)) > o.factor*float64(med)
}

// Outliers lists currently flagged peers, sorted.
func (o *OutlierTracker) Outliers() []string {
	var out []string
	for _, p := range o.Peers() {
		if o.IsOutlier(p) {
			out = append(out, p)
		}
	}
	return out
}
