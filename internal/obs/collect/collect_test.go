package collect

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"dvdc/internal/obs"
)

var base = time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC)

// mkSpan builds one span with millisecond offsets from the test epoch.
func mkSpan(trace, id, parent uint64, name, lane string, startMS, endMS int, kv ...string) obs.Span {
	s := obs.Span{
		Trace: trace, ID: id, Parent: parent, Name: name, Lane: lane,
		Start: base.Add(time.Duration(startMS) * time.Millisecond),
		End:   base.Add(time.Duration(endMS) * time.Millisecond),
	}
	for i := 0; i+1 < len(kv); i += 2 {
		if s.Attrs == nil {
			s.Attrs = map[string]string{}
		}
		s.Attrs[kv[i]] = kv[i+1]
	}
	return s
}

// roundSpans is a synthetic two-phase round trace spanning three processes:
// the coordinator's lane, pool rpc spans (empty lane, peer attr), and node
// handler lanes — the shape the live cluster produces.
func roundSpans() []obs.Span {
	return []obs.Span{
		mkSpan(7, 1, 0, "round", "coord", 0, 100, "epoch", "5"),
		mkSpan(7, 2, 1, "prepare", "coord", 0, 20),
		mkSpan(7, 3, 2, "rpc MsgPrepare", "", 0, 18, "peer", "node1"),
		mkSpan(7, 4, 3, "node.MsgPrepare", "node1", 1, 17),
		mkSpan(7, 5, 2, "rpc MsgPrepare", "", 0, 12, "peer", "node2"),
		mkSpan(7, 6, 5, "node.MsgPrepare", "node2", 1, 11),
		mkSpan(7, 7, 1, "commit", "coord", 20, 100),
		mkSpan(7, 8, 7, "rpc MsgCommit", "", 20, 98, "peer", "node2"),
		mkSpan(7, 9, 8, "node.MsgCommit", "node2", 21, 30),
		mkSpan(7, 10, 7, "rpc MsgCommit", "", 20, 30, "peer", "node1"),
		mkSpan(7, 11, 10, "node.MsgCommit", "node1", 21, 29),
	}
}

func TestBuildTreeMergeDeterminism(t *testing.T) {
	spans := roundSpans()
	want, err := BuildTree(spans).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]obs.Span(nil), spans...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		// Duplicate a random prefix: re-scraping an endpoint must not change
		// the merge.
		shuffled = append(shuffled, shuffled[:rng.Intn(len(shuffled))]...)
		got, err := BuildTree(shuffled).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: merged tree differs from canonical:\n got: %s\nwant: %s", trial, got, want)
		}
	}
}

func TestCollectorMergeOrderIndependent(t *testing.T) {
	spans := roundSpans()
	a, b := New(), New()
	// a: pushed in order, twice. b: pushed in reverse, split into two batches.
	a.Add(spans...)
	a.Add(spans...)
	rev := append([]obs.Span(nil), spans...)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	b.Add(rev[:4]...)
	b.Add(rev[4:]...)

	am, err := a.Tree(7).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bm, err := b.Tree(7).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(am, bm) {
		t.Fatalf("collectors disagree:\n a: %s\n b: %s", am, bm)
	}
	if a.Len() != len(spans) {
		t.Fatalf("Len = %d, want %d (dedup failed)", a.Len(), len(spans))
	}
}

func TestCollectorPrefersFinishedSpan(t *testing.T) {
	inflight := mkSpan(7, 1, 0, "round", "coord", 0, 0) // scraped mid-flight
	finished := mkSpan(7, 1, 0, "round", "coord", 0, 100)
	c1, c2 := New(), New()
	c1.Add(inflight)
	c1.Add(finished)
	c2.Add(finished)
	c2.Add(inflight)
	for i, c := range []*Collector{c1, c2} {
		got := c.Spans()
		if len(got) != 1 || !got[0].End.Equal(finished.End) {
			t.Fatalf("collector %d kept %+v, want the finished copy", i, got)
		}
	}
}

func TestTreeVerify(t *testing.T) {
	if err := BuildTree(roundSpans()).Verify(); err != nil {
		t.Fatalf("well-formed tree rejected: %v", err)
	}

	// Orphan: drop the prepare span; its rpc children lose their parent.
	var orphaned []obs.Span
	for _, s := range roundSpans() {
		if s.ID != 2 {
			orphaned = append(orphaned, s)
		}
	}
	if err := BuildTree(orphaned).Verify(); err == nil {
		t.Fatal("orphaned tree verified")
	}

	// Two roots: a second span with Parent == 0.
	two := append(roundSpans(), mkSpan(7, 99, 0, "stray", "coord", 5, 6))
	if err := BuildTree(two).Verify(); err == nil {
		t.Fatal("double-rooted tree verified")
	}

	// Empty.
	if err := BuildTree(nil).Verify(); err == nil {
		t.Fatal("empty tree verified")
	}
}

func TestLatestRound(t *testing.T) {
	c := New()
	c.Add(roundSpans()...)
	later := mkSpan(9, 50, 0, "round", "coord", 200, 250, "epoch", "6")
	c.Add(later)
	c.Add(mkSpan(11, 60, 0, "recovery", "coord", 300, 400)) // different root name
	if got := c.LatestRound("round"); got != 9 {
		t.Fatalf("LatestRound = %d, want 9", got)
	}
	if got := c.LatestRound("recovery"); got != 11 {
		t.Fatalf("LatestRound(recovery) = %d, want 11", got)
	}
}

func TestMetricValue(t *testing.T) {
	exp := `# HELP dvdc_up up
# TYPE dvdc_up gauge
dvdc_up 1
dvdc_obs_open_spans 3
dvdc_spans_dropped_total 17
dvdc_rpc_latency_seconds_count{peer="node1"} 42
dvdc_pool_dials_total{peer="node2"} 7
`
	if v, ok := MetricValue(exp, "dvdc_up"); !ok || v != 1 {
		t.Fatalf("dvdc_up = %v, %v", v, ok)
	}
	if v, ok := MetricValue(exp, "dvdc_spans_dropped_total"); !ok || v != 17 {
		t.Fatalf("dropped = %v, %v", v, ok)
	}
	if v, ok := MetricValue(exp, "dvdc_pool_dials_total", "peer=node2"); !ok || v != 7 {
		t.Fatalf("labeled = %v, %v", v, ok)
	}
	if _, ok := MetricValue(exp, "dvdc_pool_dials_total", "peer=node9"); ok {
		t.Fatal("matched absent label")
	}
	if _, ok := MetricValue(exp, "dvdc_obs_open"); ok {
		t.Fatal("matched a name prefix as a whole name")
	}
}
