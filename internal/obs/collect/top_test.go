package collect

import (
	"testing"
	"time"

	"dvdc/internal/obs"
)

// topFixture is a fully populated view with deterministic values, covering a
// healthy source, a down source, the straggler mark, and an outlier flag.
func topFixture() TopView {
	return TopView{
		Sources: []SourceStatus{
			{Addr: "127.0.0.1:9100", Up: true, OpenSpans: 1, Dropped: 3, Spans: 7,
				DedupHits: 12, DedupSaved: 3 << 10, DedupInval: 2},
			{Addr: "127.0.0.1:9101", Up: false, Err: "dial tcp: connection refused"},
		},
		Trace:  7,
		Epoch:  "5",
		Wall:   100 * time.Millisecond,
		Closed: true,
		Attr:   Attribute(BuildTree(roundSpans())),

		Outliers:      []string{"node2"},
		ClusterMedian: 2 * time.Millisecond,
		PeerP99: map[string]time.Duration{
			"node1": 2 * time.Millisecond,
			"node2": 78 * time.Millisecond,
		},
	}
}

const topGolden = `dvdc cluster telemetry — 2 source(s)
  SOURCE                   UP     OPEN   DROPPED   SPANS   DEDUP     SAVED  INVAL
  127.0.0.1:9100           ok        1         3       7      12    3.0KiB      2
  127.0.0.1:9101           DOWN      0         0       0       0        0B      0
      dial tcp: connection refused

round trace 0000000000000007  epoch 5  wall 100ms  [CLOSED]
  LANE     BUSY         SPANS  SHARE
 *node2    90ms             4  ####################################
  node1    28ms             4  ###########
  coord    0s               3
  straggler node2 (rpc MsgCommit, 69ms of 100ms round)

  peer p99 (cluster median 2ms):
    node1    2ms
    node2    78ms  << OUTLIER
`

func TestRenderTopGolden(t *testing.T) {
	got := RenderTop(topFixture(), 80)
	if got != topGolden {
		t.Fatalf("render drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, topGolden)
	}
	// Rendering is pure: same view, same bytes.
	if again := RenderTop(topFixture(), 80); again != got {
		t.Fatal("render is not deterministic")
	}
}

func TestRenderTopNoTrace(t *testing.T) {
	got := RenderTop(TopView{Sources: []SourceStatus{{Addr: "x", Up: true}}}, 80)
	want := `dvdc cluster telemetry — 1 source(s)
  SOURCE                   UP     OPEN   DROPPED   SPANS   DEDUP     SAVED  INVAL
  x                        ok        0         0       0       0        0B      0

no round trace collected yet
`
	if got != want {
		t.Fatalf("render drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// pmFixture is a bundle as ReadBundle would return it, with fixed times.
func pmFixture() *obs.Bundle {
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	return &obs.Bundle{
		Path: "/tmp/pm/postmortem-partial-commit-42",
		Meta: obs.BundleMeta{
			Reason:    "partial-commit",
			Time:      at(500),
			HostedPID: 4242,
			Entries:   4,
			Dropped:   2,
			Meta:      map[string]any{"seed": float64(7), "nodes": float64(3)},
		},
		Entries: []obs.FlightEntry{
			{Time: at(100), Kind: "chaos", Name: "delay", Peer: "-1->2", Attrs: map[string]string{"note": "armed"}},
			{Time: at(110), Kind: "rpc", Name: "MsgPrepare", Peer: "node1", Trace: 7, DurNS: int64(5 * time.Millisecond)},
			{Time: at(140), Kind: "rpc", Name: "MsgCommit", Peer: "node2", Trace: 7, DurNS: int64(30 * time.Millisecond), Err: "pool: retries exhausted"},
			{Time: at(141), Kind: "note", Name: "partial-commit", Attrs: map[string]string{"epoch": "5"}},
		},
		Metrics: "# TYPE dvdc_up gauge\ndvdc_up 1\ndvdc_rounds_total 9\n",
	}
}

const pmGolden = `postmortem bundle /tmp/pm/postmortem-partial-commit-42
  reason:  partial-commit
  time:    2026-01-01T12:00:00.5Z
  pid:     4242
  entries: 4 (2 evicted before dump)
  nodes: 3
  seed: 7

  kinds: chaos=1 note=1 rpc=2  errors=1

last 2 entries:
  12:00:00.140000  rpc   MsgCommit peer=node2 30ms trace=0000000000000007 ERR=pool: retries exhausted
  12:00:00.141000  note  partial-commit epoch=5

errored entries (last 1):
  12:00:00.140000  rpc   MsgCommit peer=node2 30ms trace=0000000000000007 ERR=pool: retries exhausted

metrics snapshot: 2 series lines (see metrics.prom)
`

func TestRenderPostmortemGolden(t *testing.T) {
	got := RenderPostmortem(pmFixture(), 2)
	if got != pmGolden {
		t.Fatalf("render drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, pmGolden)
	}
}
