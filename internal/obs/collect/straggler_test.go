package collect

import (
	"strings"
	"testing"
	"time"

	"dvdc/internal/obs"
)

func TestAttributeNamesDelayedPeer(t *testing.T) {
	// roundSpans delays node2's commit rpc: the rpc span runs 78ms while its
	// handler span covers only 9ms — the shape a chaos delay fault produces.
	a := Attribute(BuildTree(roundSpans()))
	if a == nil {
		t.Fatal("Attribute returned nil for a well-formed tree")
	}
	if a.Trace != 7 || a.RootLane != "coord" || a.Wall != 100*time.Millisecond {
		t.Fatalf("attribution header = %+v", a)
	}
	if a.Straggler != "node2" || a.StragglerSpan != "rpc MsgCommit" {
		t.Fatalf("straggler = %q in %q, want node2 in rpc MsgCommit", a.Straggler, a.StragglerSpan)
	}
	if a.StragglerDur != 69*time.Millisecond { // 78ms rpc minus the 9ms handler
		t.Fatalf("straggler self time = %v, want 69ms", a.StragglerDur)
	}

	// Lanes: node2 (2+10+69+9), node1 (2+16+2+8), coord (all covered by children).
	wantLanes := []LaneTime{
		{Lane: "node2", Busy: 90 * time.Millisecond, Spans: 4},
		{Lane: "node1", Busy: 28 * time.Millisecond, Spans: 4},
		{Lane: "coord", Busy: 0, Spans: 3},
	}
	if len(a.Lanes) != len(wantLanes) {
		t.Fatalf("lanes = %+v", a.Lanes)
	}
	for i, want := range wantLanes {
		if a.Lanes[i] != want {
			t.Fatalf("lane %d = %+v, want %+v", i, a.Lanes[i], want)
		}
	}

	// Critical path descends through the span that finished last at each level.
	wantPath := []string{"round", "commit", "rpc MsgCommit", "node.MsgCommit"}
	if len(a.Path) != len(wantPath) {
		t.Fatalf("path = %+v", a.Path)
	}
	for i, want := range wantPath {
		if a.Path[i].Name != want {
			t.Fatalf("path step %d = %+v, want %s", i, a.Path[i], want)
		}
	}
	if got := a.String(); got != "straggler node2 (rpc MsgCommit, 69ms of 100ms round)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestAttributeDegenerate(t *testing.T) {
	if Attribute(nil) != nil {
		t.Fatal("Attribute(nil) != nil")
	}
	// Double-rooted tree has no root to attribute from.
	spans := []obs.Span{
		mkSpan(3, 1, 0, "round", "coord", 0, 10),
		mkSpan(3, 2, 0, "stray", "coord", 0, 5),
	}
	if Attribute(BuildTree(spans)) != nil {
		t.Fatal("Attribute on double-rooted tree != nil")
	}
	// Coordinator-only round: no off-root lane, so no straggler.
	solo := Attribute(BuildTree([]obs.Span{mkSpan(4, 1, 0, "round", "coord", 0, 10)}))
	if solo == nil || solo.Straggler != "" {
		t.Fatalf("solo attribution = %+v, want balanced", solo)
	}
	if got := solo.String(); got != "balanced round (10ms wall)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestAttributionExport(t *testing.T) {
	reg := obs.NewRegistry()
	a := Attribute(BuildTree(roundSpans()))
	a.Export(reg)
	a.Export(reg) // second round with the same straggler

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exp := b.String()
	if v, ok := MetricValue(exp, "dvdc_round_straggler_total", "node=node2"); !ok || v != 2 {
		t.Fatalf("straggler counter = %v, %v\n%s", v, ok, exp)
	}
	if v, ok := MetricValue(exp, "dvdc_round_straggler_seconds"); !ok || v != 0.069 {
		t.Fatalf("straggler seconds = %v, %v\n%s", v, ok, exp)
	}

	// Nil and balanced attributions must not publish anything.
	var nilAttr *Attribution
	nilAttr.Export(reg)
	(&Attribution{}).Export(reg)
}

func TestOutlierTracker(t *testing.T) {
	o := NewOutlierTracker(0, 0) // defaults: window 256, factor 3, minN 8
	for i := 0; i < 10; i++ {
		o.Observe("node1", time.Millisecond)
		o.Observe("node2", time.Millisecond)
		o.Observe("node3", 50*time.Millisecond)
	}
	if got := o.Peers(); len(got) != 3 || got[0] != "node1" || got[2] != "node3" {
		t.Fatalf("Peers = %v", got)
	}
	if got := o.P99("node3"); got != 50*time.Millisecond {
		t.Fatalf("P99(node3) = %v", got)
	}
	if got := o.P99("ghost"); got != 0 {
		t.Fatalf("P99(ghost) = %v", got)
	}
	if got := o.ClusterMedian(); got != time.Millisecond {
		t.Fatalf("ClusterMedian = %v", got)
	}
	if o.IsOutlier("node1") || !o.IsOutlier("node3") {
		t.Fatalf("outlier flags wrong: node1=%v node3=%v", o.IsOutlier("node1"), o.IsOutlier("node3"))
	}
	if got := o.Outliers(); len(got) != 1 || got[0] != "node3" {
		t.Fatalf("Outliers = %v", got)
	}
}

func TestOutlierTrackerMinSamples(t *testing.T) {
	o := NewOutlierTracker(0, 0)
	for i := 0; i < 10; i++ {
		o.Observe("steady", time.Millisecond)
	}
	for i := 0; i < 7; i++ { // one short of minN
		o.Observe("slow", 100*time.Millisecond)
	}
	if o.IsOutlier("slow") {
		t.Fatal("flagged a peer with fewer than minN samples")
	}
	o.Observe("slow", 100*time.Millisecond)
	if !o.IsOutlier("slow") {
		t.Fatal("did not flag a 100x-median peer at minN samples")
	}
}

func TestOutlierTrackerObserveSpansAndExport(t *testing.T) {
	reg := obs.NewRegistry()
	o := NewOutlierTracker(0, 0)
	o.SetRegistry(reg)
	spans := []obs.Span{
		mkSpan(1, 1, 0, "rpc MsgCommit", "", 0, 60, "peer", "node9"),
		mkSpan(1, 2, 0, "node.MsgCommit", "node9", 0, 50), // handler: no peer attr, skipped
		mkSpan(1, 3, 0, "rpc MsgCommit", "", 0, 2, "peer", "node8"),
	}
	for i := 0; i < 8; i++ {
		o.ObserveSpans(spans)
	}
	if got := o.Peers(); len(got) != 2 {
		t.Fatalf("Peers = %v, want rpc spans only", got)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exp := b.String()
	if v, ok := MetricValue(exp, "dvdc_peer_latency_p99_seconds", "peer=node9"); !ok || v != 0.06 {
		t.Fatalf("p99 gauge = %v, %v\n%s", v, ok, exp)
	}
	if v, ok := MetricValue(exp, "dvdc_peer_latency_outlier", "peer=node9"); !ok || v != 1 {
		t.Fatalf("outlier gauge = %v, %v\n%s", v, ok, exp)
	}
	if v, ok := MetricValue(exp, "dvdc_peer_latency_outlier", "peer=node8"); !ok || v != 0 {
		t.Fatalf("outlier gauge node8 = %v, %v\n%s", v, ok, exp)
	}
}

// TestOutlierTrackerRemoveMidWindow pins the decommission edge case: a peer
// removed mid-window stops being flagged, stops skewing the cluster median,
// and its exported gauges read zero — then re-observing it starts a fresh
// window rather than resurrecting the old one.
func TestOutlierTrackerRemoveMidWindow(t *testing.T) {
	reg := obs.NewRegistry()
	o := NewOutlierTracker(0, 0)
	o.SetRegistry(reg)
	for i := 0; i < 10; i++ {
		o.Observe("node1", time.Millisecond)
		o.Observe("node2", time.Millisecond)
		o.Observe("node3", 50*time.Millisecond)
	}
	if !o.IsOutlier("node3") {
		t.Fatal("node3 not flagged before removal")
	}

	o.Remove("node3")
	if got := o.Peers(); len(got) != 2 || got[0] != "node1" || got[1] != "node2" {
		t.Fatalf("Peers after Remove = %v", got)
	}
	if o.IsOutlier("node3") {
		t.Fatal("removed peer still flagged")
	}
	if got := o.P99("node3"); got != 0 {
		t.Fatalf("P99 of removed peer = %v, want 0", got)
	}
	if got := o.ClusterMedian(); got != time.Millisecond {
		t.Fatalf("ClusterMedian after Remove = %v, want 1ms", got)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if v, ok := MetricValue(b.String(), "dvdc_peer_latency_outlier", "peer=node3"); !ok || v != 0 {
		t.Fatalf("outlier gauge after Remove = %v, %v", v, ok)
	}
	o.Remove("node3") // removing an unknown peer is a no-op
	o.Remove("ghost")

	// A fresh window: the old 50ms samples are gone, so the re-observed peer
	// needs minN new samples before it can flag again.
	for i := 0; i < 7; i++ {
		o.Observe("node3", 50*time.Millisecond)
	}
	if o.IsOutlier("node3") {
		t.Fatal("re-observed peer flagged before minN fresh samples")
	}
	o.Observe("node3", 50*time.Millisecond)
	if !o.IsOutlier("node3") {
		t.Fatal("re-observed peer not flagged at minN fresh samples")
	}
}

// TestOutlierTrackerRecoveryDeflags pins the long-horizon recovery path: a
// peer flagged as habitually slow must lose the flag once enough fast samples
// roll its window over — a transient fault (a backup job, a flapping link
// since repaired) must not brand the peer forever. The window is the horizon:
// with window w, exactly w fast samples fully displace the slow era.
func TestOutlierTrackerRecoveryDeflags(t *testing.T) {
	const window = 16
	o := NewOutlierTracker(window, 0)
	for i := 0; i < window; i++ {
		o.Observe("node1", time.Millisecond)
		o.Observe("node2", time.Millisecond)
		o.Observe("node3", 50*time.Millisecond)
	}
	if !o.IsOutlier("node3") {
		t.Fatal("node3 not flagged during its slow era")
	}

	// Recovery: fast samples displace the slow ones one by one. Halfway
	// through, the 50ms samples still dominate the p99 and the flag holds.
	for i := 0; i < window/2; i++ {
		o.Observe("node3", time.Millisecond)
	}
	if !o.IsOutlier("node3") {
		t.Fatal("flag dropped while slow samples still sit in the window")
	}
	for i := 0; i < window/2; i++ {
		o.Observe("node3", time.Millisecond)
	}
	if o.IsOutlier("node3") {
		t.Fatalf("recovered peer still flagged after a full window of fast samples (p99 %v, median %v)",
			o.P99("node3"), o.ClusterMedian())
	}
	if got := o.Outliers(); len(got) != 0 {
		t.Fatalf("Outliers after recovery = %v", got)
	}
	if got := o.P99("node3"); got != time.Millisecond {
		t.Fatalf("P99 after recovery = %v, want 1ms", got)
	}
}

// TestOutlierTrackerObserveDataSpans pins the data-plane filter: only delta
// and delta-chunk rpc spans feed the windows, because control rpc spans fold
// a slow keeper's stall into every shipping member's latency (the smear that
// makes the cluster median chase the fault).
func TestOutlierTrackerObserveDataSpans(t *testing.T) {
	o := NewOutlierTracker(0, 0)
	spans := []obs.Span{
		mkSpan(1, 1, 0, "rpc delta", "", 0, 40, "peer", "node1"),
		mkSpan(1, 2, 0, "rpc delta-chunk", "", 0, 35, "peer", "node2"),
		mkSpan(1, 3, 0, "rpc MsgPrepare", "", 0, 90, "peer", "node3"), // control: skipped
		mkSpan(1, 4, 0, "node.MsgDelta", "node4", 0, 30),              // handler, no peer attr
		mkSpan(1, 5, 0, "rpc delta", "", 0, 20),                       // no peer attr: skipped
	}
	o.ObserveDataSpans(spans)
	if got := o.Peers(); len(got) != 2 || got[0] != "node1" || got[1] != "node2" {
		t.Fatalf("Peers = %v, want data-plane ships only", got)
	}
	if got := o.P99("node3"); got != 0 {
		t.Fatalf("control span leaked into the window: P99(node3) = %v", got)
	}
}

// TestOutlierTrackerAllPeersEquallySlow pins the false-positive edge case:
// when the whole cluster degrades in lockstep there is no outlier — the
// flag is relative to the cluster median, not an absolute threshold, so a
// uniformly slow cluster must not name a scapegoat.
func TestOutlierTrackerAllPeersEquallySlow(t *testing.T) {
	o := NewOutlierTracker(0, 0)
	for i := 0; i < 20; i++ {
		o.Observe("node1", 80*time.Millisecond)
		o.Observe("node2", 80*time.Millisecond)
		o.Observe("node3", 80*time.Millisecond)
		o.Observe("node4", 80*time.Millisecond)
	}
	if got := o.Outliers(); len(got) != 0 {
		t.Fatalf("uniformly slow cluster flagged %v", got)
	}
	// Even with mild jitter (well under the 3x-median factor) nobody flags.
	for i := 0; i < 20; i++ {
		o.Observe("node1", 60*time.Millisecond)
		o.Observe("node2", 90*time.Millisecond)
		o.Observe("node3", 120*time.Millisecond)
		o.Observe("node4", 150*time.Millisecond)
	}
	if got := o.Outliers(); len(got) != 0 {
		t.Fatalf("mild jitter flagged %v", got)
	}
}
