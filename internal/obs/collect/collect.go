// Package collect is the cluster-wide half of the observability layer: a
// collector that gathers spans and metrics from every process of a DVDC
// cluster (pulling each node's -obs-addr endpoint over HTTP, or accepting
// in-process pushes), merges cross-process spans by trace id into one round
// tree, verifies the merged tree is single-rooted and closed, and runs
// per-round critical-path attribution that names the node a round's
// wall-clock went to. stdchk's lesson applies: aggregate numbers are only
// trustworthy with per-contributor attribution, so everything here keeps the
// per-node breakdown next to the cluster total.
package collect

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dvdc/internal/obs"
)

// spanKey identifies one span globally: ids are minted per process with a
// random base, so (trace, span) collisions across processes are negligible
// and a re-scrape of the same span dedupes to one entry.
type spanKey struct {
	trace, id uint64
}

// Collector accumulates spans from many sources and serves merged,
// canonically ordered trace trees. Merging is idempotent and order
// independent: feeding the same span set in any arrival order — or scraping
// the same endpoint twice — yields byte-identical trees. Safe for
// concurrent use.
type Collector struct {
	mu    sync.Mutex
	spans map[spanKey]obs.Span

	client *http.Client
}

// New builds an empty collector.
func New() *Collector {
	return &Collector{
		spans:  map[spanKey]obs.Span{},
		client: &http.Client{Timeout: 5 * time.Second},
	}
}

// Add merges spans pushed from in-process sources (the coordinator's own
// tracer, a JSONL file) and returns how many were new. Duplicate (trace,
// span) keys resolve deterministically regardless of arrival order: the copy
// with the later End wins (a span scraped mid-flight then re-scraped
// finished), ties broken by the lexically larger canonical encoding.
func (c *Collector) Add(spans ...obs.Span) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	added := 0
	for _, s := range spans {
		k := spanKey{s.Trace, s.ID}
		old, ok := c.spans[k]
		if !ok {
			c.spans[k] = s
			added++
			continue
		}
		if preferSpan(s, old) {
			c.spans[k] = s
		}
	}
	return added
}

// preferSpan decides deterministically which of two copies of one span to
// keep. It must be a strict order on distinct copies so that merge results
// do not depend on arrival order.
func preferSpan(a, b obs.Span) bool {
	if !a.End.Equal(b.End) {
		return a.End.After(b.End)
	}
	ab, _ := json.Marshal(a)
	bb, _ := json.Marshal(b)
	return string(ab) > string(bb)
}

// ScrapeSpans pulls one endpoint's /spans document (addr is the host:port of
// its -obs-addr) and merges it. Returns how many spans were new.
func (c *Collector) ScrapeSpans(addr string) (int, error) {
	resp, err := c.client.Get("http://" + addr + "/spans")
	if err != nil {
		return 0, fmt.Errorf("collect: scrape %s: %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("collect: scrape %s: HTTP %d", addr, resp.StatusCode)
	}
	var spans []obs.Span
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		return 0, fmt.Errorf("collect: scrape %s: %w", addr, err)
	}
	return c.Add(spans...), nil
}

// ScrapeMetrics pulls one endpoint's raw Prometheus exposition.
func (c *Collector) ScrapeMetrics(addr string) (string, error) {
	resp, err := c.client.Get("http://" + addr + "/metrics")
	if err != nil {
		return "", fmt.Errorf("collect: scrape %s: %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("collect: scrape %s: HTTP %d", addr, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Len returns how many distinct spans the collector holds.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.spans)
}

// Spans returns every merged span in canonical order.
func (c *Collector) Spans() []obs.Span {
	c.mu.Lock()
	out := make([]obs.Span, 0, len(c.spans))
	for _, s := range c.spans {
		out = append(out, s)
	}
	c.mu.Unlock()
	sortCanonical(out)
	return out
}

// Traces lists trace ids ordered by each trace's earliest span start.
func (c *Collector) Traces() []uint64 {
	ids, _ := obs.GroupTraces(c.Spans())
	return ids
}

// Tree builds the merged tree of one trace (nil when the collector holds no
// spans of it).
func (c *Collector) Tree(trace uint64) *Tree {
	var spans []obs.Span
	c.mu.Lock()
	for k, s := range c.spans {
		if k.trace == trace {
			spans = append(spans, s)
		}
	}
	c.mu.Unlock()
	if len(spans) == 0 {
		return nil
	}
	return BuildTree(spans)
}

// LatestRound returns the trace id of the most recently started span tree
// whose root is named rootName ("round" for checkpoint rounds); 0 when none.
func (c *Collector) LatestRound(rootName string) uint64 {
	var best uint64
	var bestStart time.Time
	for _, s := range c.Spans() {
		if s.Parent == 0 && s.Name == rootName && (best == 0 || s.Start.After(bestStart)) {
			best, bestStart = s.Trace, s.Start
		}
	}
	return best
}

// sortCanonical orders spans by (trace, start, id): the one true order every
// rendering and marshaling uses, so merged output is reproducible.
func sortCanonical(spans []obs.Span) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Trace != spans[j].Trace {
			return spans[i].Trace < spans[j].Trace
		}
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].ID < spans[j].ID
	})
}

// Tree is one trace's merged span set in canonical order, with the parent
// index resolved.
type Tree struct {
	Trace uint64
	Spans []obs.Span // canonical order (start, id)

	root     int              // index of the root span, -1 when not single-rooted
	children map[uint64][]int // span id -> child indexes, canonical order
}

// BuildTree merges (deduping exactly like Collector.Add) and canonically
// orders one trace's spans.
func BuildTree(spans []obs.Span) *Tree {
	byKey := map[spanKey]obs.Span{}
	for _, s := range spans {
		k := spanKey{s.Trace, s.ID}
		if old, ok := byKey[k]; !ok || preferSpan(s, old) {
			byKey[k] = s
		}
	}
	uniq := make([]obs.Span, 0, len(byKey))
	for _, s := range byKey {
		uniq = append(uniq, s)
	}
	sortCanonical(uniq)
	t := &Tree{Spans: uniq, root: -1, children: map[uint64][]int{}}
	if len(uniq) > 0 {
		t.Trace = uniq[0].Trace
	}
	byID := map[uint64]int{}
	for i, s := range uniq {
		byID[s.ID] = i
	}
	for i, s := range uniq {
		if s.Parent == 0 {
			if t.root == -1 {
				t.root = i
			} else {
				t.root = -2 // more than one root
			}
			continue
		}
		if _, ok := byID[s.Parent]; ok {
			t.children[s.Parent] = append(t.children[s.Parent], i)
		}
	}
	if t.root == -2 {
		t.root = -1
	}
	return t
}

// Root returns the root span (nil when the tree is not single-rooted).
func (t *Tree) Root() *obs.Span {
	if t.root < 0 || t.root >= len(t.Spans) {
		return nil
	}
	return &t.Spans[t.root]
}

// Children returns the child indexes of one span id, canonical order.
func (t *Tree) Children(id uint64) []int { return t.children[id] }

// Verify checks the merged tree is a well-formed round trace: non-empty, all
// spans on one trace id, exactly one root, every non-root span's parent
// recorded (closed — no orphan whose parent was lost to scrape timing or a
// dropped ring entry), and every span reachable from the root (no cycles).
func (t *Tree) Verify() error {
	if len(t.Spans) == 0 {
		return fmt.Errorf("collect: empty trace")
	}
	roots := 0
	for _, s := range t.Spans {
		if s.Trace != t.Trace {
			return fmt.Errorf("collect: trace %016x: span %q carries foreign trace id %016x", t.Trace, s.Name, s.Trace)
		}
		if s.Parent == 0 {
			roots++
		}
	}
	if roots != 1 {
		return fmt.Errorf("collect: trace %016x: %d roots, want 1", t.Trace, roots)
	}
	byID := map[uint64]bool{}
	for _, s := range t.Spans {
		byID[s.ID] = true
	}
	for _, s := range t.Spans {
		if s.Parent != 0 && !byID[s.Parent] {
			return fmt.Errorf("collect: trace %016x: span %q (%x) orphaned: parent %x never collected",
				t.Trace, s.Name, s.ID, s.Parent)
		}
	}
	seen := map[uint64]bool{}
	var walk func(i int)
	walk = func(i int) {
		s := t.Spans[i]
		if seen[s.ID] {
			return
		}
		seen[s.ID] = true
		for _, ci := range t.children[s.ID] {
			walk(ci)
		}
	}
	walk(t.root)
	if len(seen) != len(t.Spans) {
		return fmt.Errorf("collect: trace %016x: %d of %d spans unreachable from root (parent cycle)",
			t.Trace, len(t.Spans)-len(seen), len(t.Spans))
	}
	return nil
}

// Marshal renders the tree as canonical JSONL — one span per line in
// canonical order. Byte-identical for the same span set regardless of the
// order spans arrived in (the determinism contract merging is tested on).
func (t *Tree) Marshal() ([]byte, error) {
	var b strings.Builder
	for _, s := range t.Spans {
		line, err := json.Marshal(s)
		if err != nil {
			return nil, err
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return []byte(b.String()), nil
}

// Wall returns the tree's wall-clock extent (root duration when
// single-rooted, else the span hull).
func (t *Tree) Wall() time.Duration {
	if r := t.Root(); r != nil {
		return r.Duration()
	}
	if len(t.Spans) == 0 {
		return 0
	}
	t0, t1 := t.Spans[0].Start, t.Spans[0].End
	for _, s := range t.Spans {
		if s.Start.Before(t0) {
			t0 = s.Start
		}
		if s.End.After(t1) {
			t1 = s.End
		}
	}
	return t1.Sub(t0)
}

// MetricValue extracts one sample from a Prometheus text exposition: the
// series named name with no labels, or — when labels are given as
// "key=value" strings — the series carrying exactly those label pairs among
// its labels. Returns false when absent. This is the thin slice of parsing
// the top view needs from scraped endpoints, not a general parser.
func MetricValue(exposition, name string, labels ...string) (float64, bool) {
	for _, line := range strings.Split(exposition, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rest, ok := strings.CutPrefix(line, name)
		if !ok {
			continue
		}
		// rest is "{labels} value", " value", or this was a longer name.
		var labelPart string
		switch {
		case strings.HasPrefix(rest, "{"):
			end := strings.Index(rest, "}")
			if end < 0 {
				continue
			}
			labelPart, rest = rest[1:end], rest[end+1:]
		case strings.HasPrefix(rest, " "):
		default:
			continue
		}
		if len(labels) > 0 {
			match := true
			for _, want := range labels {
				k, v, _ := strings.Cut(want, "=")
				if !strings.Contains(labelPart, fmt.Sprintf("%s=%q", k, v)) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			continue
		}
		return f, true
	}
	return 0, false
}
