package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RenderTimeline renders one trace's spans as an ASCII phase timeline: one
// row per span in tree order (children indented under parents), a lane
// column naming who did the work (coord, nodeN, chaos), and a bar scaled to
// the trace's wall-clock extent. Instantaneous fault events (chaos.*) render
// as a '!' marker at the moment they fired; other instant events as '.'.
// width is the bar width in characters (<= 0 picks 64).
func RenderTimeline(spans []Span, width int) string {
	if len(spans) == 0 {
		return "(empty trace)\n"
	}
	if width <= 0 {
		width = 64
	}

	// Trace extent.
	t0, t1 := spans[0].Start, spans[0].End
	for _, s := range spans {
		if s.Start.Before(t0) {
			t0 = s.Start
		}
		if s.End.After(t1) {
			t1 = s.End
		}
	}
	total := t1.Sub(t0)
	if total <= 0 {
		total = time.Nanosecond
	}
	col := func(t time.Time) int {
		c := int(float64(t.Sub(t0)) / float64(total) * float64(width))
		if c < 0 {
			c = 0
		}
		if c > width-1 {
			c = width - 1
		}
		return c
	}

	// Tree order: roots (and orphans) by start time, then DFS with children
	// by start time. Lanes inherit from the nearest ancestor when empty.
	byID := map[uint64]*Span{}
	children := map[uint64][]*Span{}
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}
	var roots []*Span
	for i := range spans {
		s := &spans[i]
		if s.Parent != 0 && byID[s.Parent] != nil && byID[s.Parent] != s {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	byStart := func(list []*Span) {
		sort.Slice(list, func(i, j int) bool {
			if list[i].Start.Equal(list[j].Start) {
				return list[i].ID < list[j].ID
			}
			return list[i].Start.Before(list[j].Start)
		})
	}
	byStart(roots)
	for _, c := range children {
		byStart(c)
	}

	type row struct {
		s     *Span
		depth int
		lane  string
	}
	var rows []row
	var walk func(s *Span, depth int, lane string)
	walk = func(s *Span, depth int, lane string) {
		if s.Lane != "" {
			lane = s.Lane
		}
		rows = append(rows, row{s: s, depth: depth, lane: lane})
		for _, c := range children[s.ID] {
			walk(c, depth+1, lane)
		}
	}
	for _, r := range roots {
		walk(r, 0, "")
	}

	nameCol := 0
	for _, r := range rows {
		if n := 2*r.depth + len(r.s.Name); n > nameCol {
			nameCol = n
		}
	}
	if nameCol > 40 {
		nameCol = 40
	}

	faults := 0
	for _, s := range spans {
		if strings.HasPrefix(s.Name, "chaos.") {
			faults++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %016x: %d spans, %v wall", spans[0].Trace, len(spans), total.Round(time.Microsecond))
	if faults > 0 {
		fmt.Fprintf(&b, ", %d fault events", faults)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-8s %-*s |%-*s| %s\n", "lane", nameCol, "span", width, "0 .. "+total.Round(time.Microsecond).String(), "wall")

	for _, r := range rows {
		s := r.s
		bar := make([]byte, width)
		for i := range bar {
			bar[i] = ' '
		}
		var tail string
		if s.Instant() {
			mark := byte('.')
			if strings.HasPrefix(s.Name, "chaos.") {
				mark = '!'
			}
			bar[col(s.Start)] = mark
			tail = "event"
			if p := s.Attrs["pair"]; p != "" {
				tail = "pair " + p
			}
		} else {
			from, to := col(s.Start), col(s.End)
			if to < from {
				to = from
			}
			for i := from; i <= to; i++ {
				bar[i] = '='
			}
			bar[from] = '['
			if to > from {
				bar[to] = ']'
			}
			tail = s.Duration().Round(time.Microsecond).String()
		}
		name := strings.Repeat("  ", r.depth) + s.Name
		if len(name) > nameCol {
			name = name[:nameCol]
		}
		if s.Err != "" {
			tail += " ERR"
		}
		lane := r.lane
		if lane == "" {
			lane = "-"
		}
		fmt.Fprintf(&b, "%-8s %-*s |%s| %s\n", lane, nameCol, name, bar, tail)
	}
	// Errors rendered in full below the chart so the rows stay aligned.
	for _, r := range rows {
		if r.s.Err != "" {
			fmt.Fprintf(&b, "  ERR %s: %s\n", r.s.Name, r.s.Err)
		}
	}
	return b.String()
}

// SummarizeTraces renders one line per trace (ordered by first span start):
// trace id, root span name, span count, wall-clock, and fault-event count.
// Used by `dvdcctl trace` to list what a JSONL sink holds.
func SummarizeTraces(spans []Span) []string {
	ids, byTrace := GroupTraces(spans)
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		ts := byTrace[id]
		root := "?"
		var t0, t1 time.Time
		faults := 0
		for i, s := range ts {
			if i == 0 || s.Start.Before(t0) {
				t0 = s.Start
			}
			if s.End.After(t1) {
				t1 = s.End
			}
			if s.Parent == 0 {
				root = s.Name
				if e := s.Attrs["epoch"]; e != "" {
					root += " epoch=" + e
				}
			}
			if strings.HasPrefix(s.Name, "chaos.") {
				faults++
			}
		}
		line := fmt.Sprintf("%016x  %-24s %4d spans  %10v", id, root, len(ts), t1.Sub(t0).Round(time.Microsecond))
		if faults > 0 {
			line += fmt.Sprintf("  %d faults", faults)
		}
		out = append(out, line)
	}
	return out
}
