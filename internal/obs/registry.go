package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments by n (negative deltas are a programming error and ignored).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram with cumulative Prometheus
// exposition and quantile estimation by linear interpolation inside the
// owning bucket. Observations are float64 (seconds for latencies, bytes for
// sizes); values above the last bound land in the +Inf overflow bucket.
type Histogram struct {
	bounds []float64 // ascending upper bounds; counts has one extra +Inf slot
	mu     sync.Mutex
	counts []int64
	sum    float64
	total  int64
}

// NewHistogram builds a standalone histogram over ascending bucket bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (0 <= q <= 1) assuming observations are
// uniform inside each bucket. The overflow bucket cannot be interpolated and
// reports the last finite bound. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.total)
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(h.bounds) { // overflow bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// histSnapshot is a consistent copy for exposition.
type histSnapshot struct {
	bounds []float64
	counts []int64
	sum    float64
	total  int64
}

func (h *Histogram) snapshot() histSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return histSnapshot{
		bounds: h.bounds,
		counts: append([]int64(nil), h.counts...),
		sum:    h.sum,
		total:  h.total,
	}
}

// LatencyBuckets is the registry-wide bucket layout for wall-clock
// histograms, in seconds: 100µs to 10s, roughly 2.5x per step.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// ByteBuckets is the bucket layout for payload-size histograms: 256 B to
// 256 MiB (the wire's MaxFrame), 4x per step.
func ByteBuckets() []float64 {
	var out []float64
	for b := 256.0; b <= 256*1024*1024; b *= 4 {
		out = append(out, b)
	}
	return out
}

// seriesKind discriminates what a registered series holds.
type seriesKind uint8

const (
	kindCounter seriesKind = iota + 1
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

func (k seriesKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one metric label pair.
type Label struct{ Key, Value string }

// series is one (name, labels) time series.
type series struct {
	name    string
	labels  []Label
	kind    seriesKind
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// counterMount exposes an externally owned CounterSet as one counter family,
// each entry labelled {labelKey="<entry name>"}.
type counterMount struct {
	name     string
	labelKey string
	set      *CounterSet
}

// Registry holds named metric series for Prometheus exposition. Get-or-create
// accessors make instrumentation declarative: calling Counter twice with the
// same name and labels returns the same *Counter. A nil *Registry hands back
// standalone unregistered instruments, so instrumented code needs no guards.
type Registry struct {
	mu     sync.Mutex
	byKey  map[string]*series
	mounts []counterMount
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{byKey: map[string]*series{}} }

// seriesKey canonicalizes (name, sorted labels).
func seriesKey(name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte(0)
		b.WriteString(l.Value)
	}
	return b.String()
}

// parseLabels folds variadic "k, v, k, v" into sorted label pairs.
func parseLabels(name string, kv []string) []Label {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %s: odd label list %v", name, kv))
	}
	labels := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		labels = append(labels, Label{Key: kv[i], Value: kv[i+1]})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	return labels
}

// lookup get-or-creates a series, enforcing kind consistency. make builds
// the instrument on first use; replace allows func series to be re-bound
// (a pool recreated after repair re-registers its funcs on the same key).
func (r *Registry) lookup(name string, kind seriesKind, kv []string, mk func(*series), replace bool) *series {
	labels := parseLabels(name, kv)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byKey[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %v (was %v)", name, kind.promType(), s.kind.promType()))
		}
		if replace {
			mk(s)
		}
		return s
	}
	s := &series{name: name, labels: labels, kind: kind}
	mk(s)
	r.byKey[key] = s
	return s
}

// Counter get-or-creates a counter series. kv is "key, value, key, value".
func (r *Registry) Counter(name string, kv ...string) *Counter {
	if r == nil {
		return &Counter{}
	}
	return r.lookup(name, kindCounter, kv, func(s *series) {
		if s.counter == nil {
			s.counter = &Counter{}
		}
	}, false).counter
}

// Gauge get-or-creates a gauge series.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	return r.lookup(name, kindGauge, kv, func(s *series) {
		if s.gauge == nil {
			s.gauge = &Gauge{}
		}
	}, false).gauge
}

// CounterFunc registers (or re-binds) a counter series read from fn at
// exposition time.
func (r *Registry) CounterFunc(name string, fn func() float64, kv ...string) {
	if r == nil {
		return
	}
	r.lookup(name, kindCounterFunc, kv, func(s *series) { s.fn = fn }, true)
}

// GaugeFunc registers (or re-binds) a gauge series read from fn at
// exposition time.
func (r *Registry) GaugeFunc(name string, fn func() float64, kv ...string) {
	if r == nil {
		return
	}
	r.lookup(name, kindGaugeFunc, kv, func(s *series) { s.fn = fn }, true)
}

// Histogram get-or-creates a histogram series (bounds are only consulted on
// first creation).
func (r *Registry) Histogram(name string, bounds []float64, kv ...string) *Histogram {
	if r == nil {
		return NewHistogram(bounds)
	}
	return r.lookup(name, kindHistogram, kv, func(s *series) {
		if s.hist == nil {
			s.hist = NewHistogram(bounds)
		}
	}, false).hist
}

// MountCounterSet exposes an ordered CounterSet (e.g. the chaos injector's
// per-kind fault tallies) as the counter family name{labelKey="<entry>"}.
// Mounting the same set on the same name again is a no-op.
func (r *Registry) MountCounterSet(name, labelKey string, set *CounterSet) {
	if r == nil || set == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.mounts {
		if m.name == name && m.set == set {
			return
		}
	}
	r.mounts = append(r.mounts, counterMount{name: name, labelKey: labelKey, set: set})
}

// CounterSet is a labelled set of monotonically increasing counters that
// renders in first-use order, so reports are stable across runs with the
// same event sequence. internal/metrics.Counters is a compatibility shim
// over it, and a set can be mounted into a Registry for exposition.
type CounterSet struct {
	mu     sync.Mutex
	order  []string
	byName map[string]int64
}

// NewCounterSet builds an empty set.
func NewCounterSet() *CounterSet { return &CounterSet{byName: map[string]int64{}} }

// Add increments one counter by delta.
func (c *CounterSet) Add(name string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byName[name]; !ok {
		c.order = append(c.order, name)
	}
	c.byName[name] += delta
}

// Get returns one counter's value (0 if never incremented).
func (c *CounterSet) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byName[name]
}

// Names returns the counter names in first-use order.
func (c *CounterSet) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

// Snapshot copies every counter into a fresh map.
func (c *CounterSet) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.byName))
	for k, v := range c.byName {
		out[k] = v
	}
	return out
}

// Total sums every counter.
func (c *CounterSet) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t int64
	for _, v := range c.byName {
		t += v
	}
	return t
}

// String renders "name=value" pairs in first-use order.
func (c *CounterSet) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	parts := make([]string, 0, len(c.order))
	for _, name := range c.order {
		parts = append(parts, fmt.Sprintf("%s=%d", name, c.byName[name]))
	}
	return strings.Join(parts, " ")
}
