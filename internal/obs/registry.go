package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments by n (negative deltas are a programming error and ignored).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram with cumulative Prometheus
// exposition and quantile estimation by linear interpolation inside the
// owning bucket. Observations are float64 (seconds for latencies, bytes for
// sizes); values above the last bound land in the +Inf overflow bucket.
type Histogram struct {
	bounds []float64 // ascending upper bounds; counts has one extra +Inf slot
	mu     sync.Mutex
	counts []int64
	sum    float64
	total  int64
}

// NewHistogram builds a standalone histogram over ascending bucket bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (0 <= q <= 1) assuming observations are
// uniform inside each bucket. The overflow bucket cannot be interpolated and
// reports the last finite bound. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.total)
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(h.bounds) { // overflow bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// histSnapshot is a consistent copy for exposition.
type histSnapshot struct {
	bounds []float64
	counts []int64
	sum    float64
	total  int64
}

func (h *Histogram) snapshot() histSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return histSnapshot{
		bounds: h.bounds,
		counts: append([]int64(nil), h.counts...),
		sum:    h.sum,
		total:  h.total,
	}
}

// HistSnapshot is a consistent point-in-time copy of a histogram, exported so
// readers (the health evaluator, benchmarks) can diff cumulative bucket counts
// between scrapes and compute windowed quantiles. Counts has one extra +Inf
// slot beyond Bounds.
type HistSnapshot struct {
	Bounds []float64
	Counts []int64
	Sum    float64
	Total  int64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := h.snapshot()
	return HistSnapshot{Bounds: s.bounds, Counts: s.counts, Sum: s.sum, Total: s.total}
}

// Sub returns the bucket-wise difference s - base (same bounds assumed), i.e.
// the distribution of observations that happened between the two snapshots.
func (s HistSnapshot) Sub(base HistSnapshot) HistSnapshot {
	out := HistSnapshot{Bounds: s.Bounds, Sum: s.Sum - base.Sum, Total: s.Total - base.Total}
	out.Counts = make([]int64, len(s.Counts))
	copy(out.Counts, s.Counts)
	for i := range base.Counts {
		if i < len(out.Counts) {
			out.Counts[i] -= base.Counts[i]
		}
	}
	return out
}

// Quantile estimates the q-quantile of the snapshot with the same linear
// interpolation as Histogram.Quantile. Returns 0 with no observations.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Total <= 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Total)
	var cum int64
	for i, c := range s.Counts {
		if c <= 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(s.Bounds) { // overflow bucket
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return s.Bounds[len(s.Bounds)-1]
}

// LatencyBuckets is the registry-wide bucket layout for wall-clock
// histograms, in seconds: 100µs to 10s, roughly 2.5x per step.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// ByteBuckets is the bucket layout for payload-size histograms: 256 B to
// 256 MiB (the wire's MaxFrame), 4x per step.
func ByteBuckets() []float64 {
	var out []float64
	for b := 256.0; b <= 256*1024*1024; b *= 4 {
		out = append(out, b)
	}
	return out
}

// seriesKind discriminates what a registered series holds.
type seriesKind uint8

const (
	kindCounter seriesKind = iota + 1
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

func (k seriesKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one metric label pair.
type Label struct{ Key, Value string }

// series is one (name, labels) time series.
type series struct {
	name    string
	labels  []Label
	kind    seriesKind
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// counterMount exposes an externally owned CounterSet as one counter family,
// each entry labelled {labelKey="<entry name>"}.
type counterMount struct {
	name     string
	labelKey string
	set      *CounterSet
}

// Registry holds named metric series for Prometheus exposition. Get-or-create
// accessors make instrumentation declarative: calling Counter twice with the
// same name and labels returns the same *Counter. A nil *Registry hands back
// standalone unregistered instruments, so instrumented code needs no guards.
type Registry struct {
	mu       sync.Mutex
	byKey    map[string]*series
	mounts   []counterMount
	hooks    []collectHook
	healthz  atomic.Value // HealthzFunc
	collects atomic.Int64
}

// collectHook is a named pre-scrape callback; named so re-registration
// replaces instead of stacking (mounting Go runtime metrics twice must not
// double-feed the GC pause histogram).
type collectHook struct {
	name string
	fn   func()
}

// HealthzFunc answers /healthz: ok is the liveness verdict, body the document
// rendered when the caller asked for the verbose JSON form.
type HealthzFunc func(verbose bool) (ok bool, body any)

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{byKey: map[string]*series{}} }

// seriesKey canonicalizes (name, sorted labels).
func seriesKey(name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte(0)
		b.WriteString(l.Value)
	}
	return b.String()
}

// parseLabels folds variadic "k, v, k, v" into sorted label pairs.
func parseLabels(name string, kv []string) []Label {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %s: odd label list %v", name, kv))
	}
	labels := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		labels = append(labels, Label{Key: kv[i], Value: kv[i+1]})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	return labels
}

// lookup get-or-creates a series, enforcing kind consistency. make builds
// the instrument on first use; replace allows func series to be re-bound
// (a pool recreated after repair re-registers its funcs on the same key).
func (r *Registry) lookup(name string, kind seriesKind, kv []string, mk func(*series), replace bool) *series {
	labels := parseLabels(name, kv)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byKey[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %v (was %v)", name, kind.promType(), s.kind.promType()))
		}
		if replace {
			mk(s)
		}
		return s
	}
	s := &series{name: name, labels: labels, kind: kind}
	mk(s)
	r.byKey[key] = s
	return s
}

// Counter get-or-creates a counter series. kv is "key, value, key, value".
func (r *Registry) Counter(name string, kv ...string) *Counter {
	if r == nil {
		return &Counter{}
	}
	return r.lookup(name, kindCounter, kv, func(s *series) {
		if s.counter == nil {
			s.counter = &Counter{}
		}
	}, false).counter
}

// Gauge get-or-creates a gauge series.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	return r.lookup(name, kindGauge, kv, func(s *series) {
		if s.gauge == nil {
			s.gauge = &Gauge{}
		}
	}, false).gauge
}

// CounterFunc registers (or re-binds) a counter series read from fn at
// exposition time.
func (r *Registry) CounterFunc(name string, fn func() float64, kv ...string) {
	if r == nil {
		return
	}
	r.lookup(name, kindCounterFunc, kv, func(s *series) { s.fn = fn }, true)
}

// GaugeFunc registers (or re-binds) a gauge series read from fn at
// exposition time.
func (r *Registry) GaugeFunc(name string, fn func() float64, kv ...string) {
	if r == nil {
		return
	}
	r.lookup(name, kindGaugeFunc, kv, func(s *series) { s.fn = fn }, true)
}

// Histogram get-or-creates a histogram series (bounds are only consulted on
// first creation).
func (r *Registry) Histogram(name string, bounds []float64, kv ...string) *Histogram {
	if r == nil {
		return NewHistogram(bounds)
	}
	return r.lookup(name, kindHistogram, kv, func(s *series) {
		if s.hist == nil {
			s.hist = NewHistogram(bounds)
		}
	}, false).hist
}

// MountCounterSet exposes an ordered CounterSet (e.g. the chaos injector's
// per-kind fault tallies) as the counter family name{labelKey="<entry>"}.
// Mounting the same set on the same name again is a no-op.
func (r *Registry) MountCounterSet(name, labelKey string, set *CounterSet) {
	if r == nil || set == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.mounts {
		if m.name == name && m.set == set {
			return
		}
	}
	r.mounts = append(r.mounts, counterMount{name: name, labelKey: labelKey, set: set})
}

// OnCollect registers (or replaces, by name) a hook run by Collect before any
// reader snapshots the registry — the seam that lets lazily computed series
// (GC pause deltas, health evaluations) refresh exactly once per scrape.
func (r *Registry) OnCollect(name string, fn func()) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.hooks {
		if r.hooks[i].name == name {
			r.hooks[i].fn = fn
			return
		}
	}
	r.hooks = append(r.hooks, collectHook{name: name, fn: fn})
}

// Collect runs the registered OnCollect hooks (outside the registry lock, so
// hooks may observe and register series). WritePrometheus calls it; in-process
// readers should too before sampling func series that depend on hooks.
func (r *Registry) Collect() {
	if r == nil {
		return
	}
	r.mu.Lock()
	hooks := make([]func(), 0, len(r.hooks))
	for _, h := range r.hooks {
		hooks = append(hooks, h.fn)
	}
	r.mu.Unlock()
	r.collects.Add(1)
	for _, fn := range hooks {
		fn()
	}
}

// SetHealthz installs the process health provider consulted by the /healthz
// endpoint of every mux built over this registry. The health evaluator
// installs itself here; without a provider /healthz reports plain liveness.
func (r *Registry) SetHealthz(fn HealthzFunc) {
	if r == nil {
		return
	}
	r.healthz.Store(fn)
}

// Healthz returns the installed provider, or nil.
func (r *Registry) Healthz() HealthzFunc {
	if r == nil {
		return nil
	}
	fn, _ := r.healthz.Load().(HealthzFunc)
	return fn
}

// Value reads one scalar series (counter, gauge, or func). The bool reports
// whether the series exists.
func (r *Registry) Value(name string, kv ...string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	key := seriesKey(name, parseLabels(name, kv))
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byKey[key]
	if !ok {
		return 0, false
	}
	switch s.kind {
	case kindCounter:
		return float64(s.counter.Value()), true
	case kindGauge:
		return float64(s.gauge.Value()), true
	case kindCounterFunc, kindGaugeFunc:
		return s.fn(), true
	}
	return 0, false
}

// HistogramSnapshot reads one histogram series' current cumulative state.
func (r *Registry) HistogramSnapshot(name string, kv ...string) (HistSnapshot, bool) {
	if r == nil {
		return HistSnapshot{}, false
	}
	key := seriesKey(name, parseLabels(name, kv))
	r.mu.Lock()
	s, ok := r.byKey[key]
	r.mu.Unlock()
	if !ok || s.kind != kindHistogram {
		return HistSnapshot{}, false
	}
	return s.hist.Snapshot(), true
}

// FamilySample is one series of a family as read by Family.
type FamilySample struct {
	Labels []Label
	Value  float64
}

// Family enumerates every scalar series registered under name, in a
// deterministic label order. Histogram series are skipped (use
// HistogramSnapshot); mounted counter sets are included.
func (r *Registry) Family(name string) []FamilySample {
	if r == nil {
		return nil
	}
	var out []FamilySample
	r.mu.Lock()
	for _, s := range r.byKey {
		if s.name != name {
			continue
		}
		switch s.kind {
		case kindCounter:
			out = append(out, FamilySample{Labels: s.labels, Value: float64(s.counter.Value())})
		case kindGauge:
			out = append(out, FamilySample{Labels: s.labels, Value: float64(s.gauge.Value())})
		case kindCounterFunc, kindGaugeFunc:
			out = append(out, FamilySample{Labels: s.labels, Value: s.fn()})
		}
	}
	mounts := append([]counterMount(nil), r.mounts...)
	r.mu.Unlock()
	for _, m := range mounts {
		if m.name != name {
			continue
		}
		snap := m.set.Snapshot()
		for _, entry := range m.set.Names() {
			out = append(out, FamilySample{
				Labels: []Label{{Key: m.labelKey, Value: entry}},
				Value:  float64(snap[entry]),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return renderLabels(out[i].Labels) < renderLabels(out[j].Labels)
	})
	return out
}

// FamilySum sums every scalar series of a family (0 when none exist) — the
// one-line read for "how many peers are flagged outliers right now".
func (r *Registry) FamilySum(name string) float64 {
	var sum float64
	for _, s := range r.Family(name) {
		sum += s.Value
	}
	return sum
}

// CounterSet is a labelled set of monotonically increasing counters that
// renders in first-use order, so reports are stable across runs with the
// same event sequence. internal/metrics.Counters is a compatibility shim
// over it, and a set can be mounted into a Registry for exposition.
type CounterSet struct {
	mu     sync.Mutex
	order  []string
	byName map[string]int64
}

// NewCounterSet builds an empty set.
func NewCounterSet() *CounterSet { return &CounterSet{byName: map[string]int64{}} }

// Add increments one counter by delta.
func (c *CounterSet) Add(name string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byName[name]; !ok {
		c.order = append(c.order, name)
	}
	c.byName[name] += delta
}

// Get returns one counter's value (0 if never incremented).
func (c *CounterSet) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byName[name]
}

// Names returns the counter names in first-use order.
func (c *CounterSet) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

// Snapshot copies every counter into a fresh map.
func (c *CounterSet) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.byName))
	for k, v := range c.byName {
		out[k] = v
	}
	return out
}

// Total sums every counter.
func (c *CounterSet) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t int64
	for _, v := range c.byName {
		t += v
	}
	return t
}

// String renders "name=value" pairs in first-use order.
func (c *CounterSet) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	parts := make([]string, 0, len(c.order))
	for _, name := range c.order {
		parts = append(parts, fmt.Sprintf("%s=%d", name, c.byName[name]))
	}
	return strings.Join(parts, " ")
}
