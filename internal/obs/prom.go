package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series (and mounted counter sets)
// in the Prometheus text exposition format, version 0.0.4. Output order is
// deterministic: metric families sorted by name, series within a family
// sorted by their rendered label set, so the exposition is golden-testable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.Collect()
	type row struct {
		labels []Label
		kind   seriesKind
		value  float64
		hist   histSnapshot
	}
	fams := map[string][]row{}
	r.mu.Lock()
	for _, s := range r.byKey {
		rw := row{labels: s.labels, kind: s.kind}
		switch s.kind {
		case kindCounter:
			rw.value = float64(s.counter.Value())
		case kindGauge:
			rw.value = float64(s.gauge.Value())
		case kindCounterFunc, kindGaugeFunc:
			rw.value = s.fn()
		case kindHistogram:
			rw.hist = s.hist.snapshot()
		}
		fams[s.name] = append(fams[s.name], rw)
	}
	mounts := append([]counterMount(nil), r.mounts...)
	r.mu.Unlock()

	for _, m := range mounts {
		snap := m.set.Snapshot()
		for _, entry := range m.set.Names() {
			fams[m.name] = append(fams[m.name], row{
				labels: []Label{{Key: m.labelKey, Value: entry}},
				kind:   kindCounter,
				value:  float64(snap[entry]),
			})
		}
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		rows := fams[name]
		sort.Slice(rows, func(i, j int) bool {
			return renderLabels(rows[i].labels) < renderLabels(rows[j].labels)
		})
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, rows[0].kind.promType()); err != nil {
			return err
		}
		for _, rw := range rows {
			if rw.kind == kindHistogram {
				if err := writeHistogram(w, name, rw.labels, rw.hist); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(rw.labels), formatValue(rw.value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders one histogram series: cumulative _bucket lines with
// le bounds, the +Inf bucket, then _sum and _count.
func writeHistogram(w io.Writer, name string, labels []Label, h histSnapshot) error {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i]
		bl := append(append([]Label(nil), labels...), Label{Key: "le", Value: formatValue(bound)})
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(bl), cum); err != nil {
			return err
		}
	}
	bl := append(append([]Label(nil), labels...), Label{Key: "le", Value: "+Inf"})
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(bl), h.total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(labels), formatValue(h.sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(labels), h.total)
	return err
}

// renderLabels renders {k="v",...} ("" for no labels), keys in sorted order
// (series labels are stored sorted; histogram code appends le last, which is
// fine — Prometheus does not require sorted label keys, only stable ones).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatValue renders a sample value: integral values as plain integers
// (counters read naturally), everything else in Go's shortest float form.
func formatValue(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
