package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("dvdc_x_total", "peer", "node1")
	c2 := r.Counter("dvdc_x_total", "peer", "node1")
	if c1 != c2 {
		t.Error("same (name, labels) returned distinct counters")
	}
	if c3 := r.Counter("dvdc_x_total", "peer", "node2"); c3 == c1 {
		t.Error("distinct labels shared a counter")
	}
	g := r.Gauge("dvdc_g")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}
	h1 := r.Histogram("dvdc_h", LatencyBuckets())
	h2 := r.Histogram("dvdc_h", nil) // bounds ignored on re-lookup
	if h1 != h2 {
		t.Error("histogram not deduped")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dvdc_x")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("dvdc_x")
}

func TestNilRegistryHandsBackWorkingInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	if c.Value() != 1 {
		t.Error("nil-registry counter inert")
	}
	r.Gauge("y").Set(3)
	r.CounterFunc("z", func() float64 { return 1 })
	r.GaugeFunc("w", func() float64 { return 1 })
	h := r.Histogram("h", LatencyBuckets())
	h.Observe(0.001)
	if h.Count() != 1 {
		t.Error("nil-registry histogram inert")
	}
	r.MountCounterSet("m", "kind", NewCounterSet())
	var buf nopWriter
	if err := r.WritePrometheus(buf); err != nil {
		t.Error(err)
	}
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestHistogramQuantileAccuracy checks quantile estimates against a known
// distribution: 100k uniform samples on [0, 1) observed into the latency
// buckets must estimate p50/p90/p99 within the owning bucket's resolution.
func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	rng := rand.New(rand.NewSource(42))
	n := 100000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = rng.Float64() // uniform [0,1)
		h.Observe(samples[i])
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := samples[int(q*float64(n))-1]
		got := h.Quantile(q)
		// The owning bucket's width bounds the interpolation error; for
		// uniform [0,1) all three quantiles land in (0.25, 1], where bucket
		// widths are at most 0.5.
		if math.Abs(got-exact) > 0.051 {
			t.Errorf("q%.0f = %.4f, exact %.4f (error %.4f)", q*100, got, exact, math.Abs(got-exact))
		}
	}
	if h.Count() != int64(n) {
		t.Errorf("Count = %d, want %d", h.Count(), n)
	}
	if s := h.Sum(); math.Abs(s-float64(n)/2) > float64(n)/100 {
		t.Errorf("Sum = %.1f, want ~%d", s, n/2)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	h.Observe(100) // overflow bucket
	if got := h.Quantile(0.5); got != 4 {
		t.Errorf("overflow quantile = %v, want last bound 4", got)
	}
	h2 := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h2.Observe(1.5) // all in the (1,2] bucket
	}
	if got := h2.Quantile(0.5); got < 1 || got > 2 {
		t.Errorf("q50 = %v, want within (1,2]", got)
	}
}

func TestCounterSetSemantics(t *testing.T) {
	cs := NewCounterSet()
	cs.Add("drop", 1)
	cs.Add("corrupt", 2)
	cs.Add("drop", 1)
	if got := cs.String(); got != "drop=2 corrupt=2" {
		t.Errorf("String = %q (first-use order broken)", got)
	}
	if cs.Get("drop") != 2 || cs.Get("nope") != 0 || cs.Total() != 4 {
		t.Error("Get/Total wrong")
	}
	snap := cs.Snapshot()
	if len(snap) != 2 || snap["corrupt"] != 2 {
		t.Errorf("Snapshot = %v", snap)
	}
	if names := cs.Names(); len(names) != 2 || names[0] != "drop" {
		t.Errorf("Names = %v", names)
	}
}
