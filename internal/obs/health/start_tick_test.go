package health

import (
	"testing"
	"time"

	"dvdc/internal/obs"
)

func TestStartTicksWallClock(t *testing.T) {
	reg := obs.NewRegistry()
	ev := New(Options{Registry: reg, Interval: 50 * time.Millisecond})
	InstallDefaultRules(ev, reg, Objectives{})
	ev.Start()
	defer ev.Stop()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if ev.Report().Ticks >= 2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("evaluator never ticked: %d", ev.Report().Ticks)
}
