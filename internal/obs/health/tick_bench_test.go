package health

import (
	"testing"
	"time"

	"dvdc/internal/obs"
)

func BenchmarkTickDefaultRules(b *testing.B) {
	reg := obs.NewRegistry()
	for i := 0; i < 200; i++ {
		reg.Counter("dvdc_filler_total", "n", time.Duration(i).String()).Inc()
	}
	reg.Histogram("dvdc_round_seconds", obs.LatencyBuckets()).Observe(0.015)
	ev := New(Options{Registry: reg, FixedStep: time.Second})
	InstallDefaultRules(ev, reg, Objectives{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Tick()
	}
}
