// Package health is the cluster health engine: a background evaluator that
// scrapes the process's metrics registry on a fixed tick into bounded
// per-signal time-series rings and evaluates declarative SLO rules with
// multi-window burn-rate alerting (a fast window for responsiveness, a slow
// window to suppress one-sample blips; firing→resolved state machine).
// Results are exported as dvdc_slo_*/dvdc_alert_* metrics, a JSON document on
// /api/v1/health and /healthz?verbose=1, and alert transitions are stamped
// into the flight recorder so postmortem bundles explain why they were
// dumped. The evaluator is fully deterministic under Options.FixedStep, which
// replaces the wall clock with a virtual one advanced manually by Tick.
package health

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"dvdc/internal/obs"
)

// Alert states. OK means the rule has never fired (or data vanished);
// Resolved means it fired earlier and the fast window has recovered.
const (
	StateOK       = "ok"
	StateFiring   = "firing"
	StateResolved = "resolved"
)

// SignalKind says how a signal's samples turn into a windowed measure.
type SignalKind uint8

const (
	// KindGauge signals measure the mean of the window's samples.
	KindGauge SignalKind = iota + 1
	// KindCounter signals measure the per-second rate across the window.
	KindCounter
	// KindHist signals snapshot a cumulative histogram each tick and measure
	// a quantile of the bucket deltas inside the window — a true windowed
	// p99, not the forever-cumulative one, so alerts can resolve.
	KindHist
)

// Signal is one scraped time series. Exactly one of Probe/HistProbe must be
// set, matching Kind. A probe returning ok=false records a "no data" sample.
type Signal struct {
	Name      string
	Kind      SignalKind
	Probe     func() (float64, bool)
	HistProbe func() (obs.HistSnapshot, bool)
}

// Rule is one declarative SLO: the windowed measure of Signal must stay at or
// under Objective. Burn rate is measure/Objective; the rule fires when the
// fast AND slow windows both burn at or above their thresholds, and resolves
// when the fast window recovers. Windows shorter than the tick interval are
// rounded up to one tick; both must fit inside the evaluator's retention.
type Rule struct {
	Name      string
	Signal    string
	Objective float64 // must be > 0
	Quantile  float64 // KindHist only; default 0.99
	Unit      string  // "s" renders values as durations in reports

	FastWindow time.Duration // default 10s
	SlowWindow time.Duration // default 40s
	FastBurn   float64       // default 1
	SlowBurn   float64       // default 1
	MinSamples int           // observations required in the fast window; default 1
}

// Options tune an Evaluator.
type Options struct {
	Registry *obs.Registry       // exports dvdc_slo_*/dvdc_alert_* and serves /healthz
	Recorder *obs.FlightRecorder // alert transitions are stamped here

	Interval  time.Duration // tick period; default 1s
	Retention time.Duration // ring span per signal; default 5m

	// FixedStep enables deterministic mode: the evaluator starts its virtual
	// clock at the Unix epoch and advances it by FixedStep on every manual
	// Tick. Start refuses to run in this mode.
	FixedStep time.Duration

	// Now overrides the wall clock (testing); ignored under FixedStep.
	Now func() time.Time
}

// Transition is one alert state change, kept in a bounded history.
type Transition struct {
	Rule string    `json:"rule"`
	To   string    `json:"to"`
	At   time.Time `json:"at"`
	Tick int64     `json:"tick"`
}

// RuleStatus is one rule's current evaluation in a Report.
type RuleStatus struct {
	Name      string    `json:"name"`
	Signal    string    `json:"signal"`
	State     string    `json:"state"`
	Since     time.Time `json:"since,omitempty"`
	Value     float64   `json:"value"`
	Objective float64   `json:"objective"`
	Unit      string    `json:"unit,omitempty"`
	BurnFast  float64   `json:"burn_fast"`
	BurnSlow  float64   `json:"burn_slow"`
	Samples   int       `json:"samples"`
	Fired     int64     `json:"fired"`
}

// Report is the JSON document served on /api/v1/health.
type Report struct {
	Time    time.Time    `json:"time"`
	Healthy bool         `json:"healthy"`
	Ticks   int64        `json:"ticks"`
	Rules   []RuleStatus `json:"rules"`
}

// sample is one scraped point of one signal.
type sample struct {
	t    time.Time
	v    float64
	hist obs.HistSnapshot
	ok   bool
}

// signalState is a signal plus its bounded ring, oldest first.
type signalState struct {
	sig     Signal
	samples []sample
	cap     int
}

func (s *signalState) push(p sample) {
	s.samples = append(s.samples, p)
	if len(s.samples) > s.cap {
		copy(s.samples, s.samples[len(s.samples)-s.cap:])
		s.samples = s.samples[:s.cap]
	}
}

// ruleState is a rule plus its alert state machine.
type ruleState struct {
	rule  Rule
	state string
	since time.Time
	fired int64

	value, burnFast, burnSlow float64
	samples                   int
}

// Evaluator runs the health engine. All exported methods are safe for
// concurrent use; a nil Evaluator is inert.
type Evaluator struct {
	opts Options

	mu      sync.Mutex
	signals map[string]*signalState
	order   []string
	rules   []*ruleState
	history []Transition
	ticks   int64
	vclock  time.Time // FixedStep virtual clock

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New builds an evaluator and, when a registry is present, installs itself as
// the /healthz provider. Add signals and rules before the first Tick/Start.
func New(opts Options) *Evaluator {
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if opts.Retention <= 0 {
		opts.Retention = 5 * time.Minute
	}
	e := &Evaluator{
		opts:    opts,
		signals: map[string]*signalState{},
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		vclock:  time.Unix(0, 0).UTC(),
	}
	if opts.Registry != nil {
		opts.Registry.SetHealthz(func(verbose bool) (bool, any) {
			rep := e.Report()
			return rep.Healthy, rep
		})
	}
	return e
}

// AddSignal registers one scraped series. Duplicate names panic: signal sets
// are authored in code, so a clash is a programming error.
func (e *Evaluator) AddSignal(s Signal) {
	if e == nil {
		return
	}
	if s.Name == "" || (s.Probe == nil) == (s.HistProbe == nil) {
		panic(fmt.Sprintf("health: signal %q needs a name and exactly one probe", s.Name))
	}
	capacity := int(e.opts.Retention/e.opts.Interval) + 2
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.signals[s.Name]; dup {
		panic(fmt.Sprintf("health: signal %q registered twice", s.Name))
	}
	e.signals[s.Name] = &signalState{sig: s, cap: capacity}
	e.order = append(e.order, s.Name)
}

// AddRule registers one SLO rule over a previously added signal.
func (e *Evaluator) AddRule(r Rule) {
	if e == nil {
		return
	}
	if r.Objective <= 0 {
		panic(fmt.Sprintf("health: rule %q needs a positive objective", r.Name))
	}
	if r.Quantile <= 0 || r.Quantile > 1 {
		r.Quantile = 0.99
	}
	if r.FastWindow <= 0 {
		r.FastWindow = 10 * time.Second
	}
	if r.SlowWindow <= 0 {
		r.SlowWindow = 40 * time.Second
	}
	if r.FastBurn <= 0 {
		r.FastBurn = 1
	}
	if r.SlowBurn <= 0 {
		r.SlowBurn = 1
	}
	if r.MinSamples <= 0 {
		r.MinSamples = 1
	}
	e.mu.Lock()
	if _, ok := e.signals[r.Signal]; !ok {
		e.mu.Unlock()
		panic(fmt.Sprintf("health: rule %q references unknown signal %q", r.Name, r.Signal))
	}
	rs := &ruleState{rule: r, state: StateOK}
	e.rules = append(e.rules, rs)
	e.mu.Unlock()
	// Register the func series outside e.mu: GaugeFunc takes the registry
	// lock, and a concurrent scrape holds it while reading funcs that take
	// e.mu — holding both here is the lock-order inversion.
	e.export(rs)
}

// export registers the rule's dvdc_slo_*/dvdc_alert_* func series.
func (e *Evaluator) export(rs *ruleState) {
	reg := e.opts.Registry
	if reg == nil {
		return
	}
	name := rs.rule.Name
	read := func(f func(*ruleState) float64) func() float64 {
		return func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			return f(rs)
		}
	}
	reg.GaugeFunc("dvdc_slo_value", read(func(r *ruleState) float64 { return r.value }), "rule", name)
	reg.GaugeFunc("dvdc_slo_objective", func() float64 { return rs.rule.Objective }, "rule", name)
	reg.GaugeFunc("dvdc_slo_burn_fast", read(func(r *ruleState) float64 { return r.burnFast }), "rule", name)
	reg.GaugeFunc("dvdc_slo_burn_slow", read(func(r *ruleState) float64 { return r.burnSlow }), "rule", name)
	reg.GaugeFunc("dvdc_alert_firing", read(func(r *ruleState) float64 {
		if r.state == StateFiring {
			return 1
		}
		return 0
	}), "rule", name)
}

// now returns the evaluator's current time under the configured clock.
func (e *Evaluator) now() time.Time {
	if e.opts.FixedStep > 0 {
		return e.vclock
	}
	if e.opts.Now != nil {
		return e.opts.Now()
	}
	return time.Now()
}

// Tick scrapes every signal once and re-evaluates every rule. Under
// FixedStep the virtual clock advances by one step first, so tick N sits at
// epoch+N*step exactly.
func (e *Evaluator) Tick() {
	if e == nil {
		return
	}
	// Refresh func series and collect hooks before probing, so probes read
	// this tick's values rather than the previous scrape's.
	if e.opts.Registry != nil {
		e.opts.Registry.Collect()
	}

	e.mu.Lock()
	if e.opts.FixedStep > 0 {
		e.vclock = e.vclock.Add(e.opts.FixedStep)
	}
	now := e.now()
	e.ticks++
	tick := e.ticks
	states := make([]*signalState, 0, len(e.order))
	for _, name := range e.order {
		states = append(states, e.signals[name])
	}
	e.mu.Unlock()

	// Probe outside the lock: probes may take registry locks or block.
	points := make([]sample, len(states))
	for i, ss := range states {
		p := sample{t: now}
		if ss.sig.HistProbe != nil {
			p.hist, p.ok = ss.sig.HistProbe()
		} else {
			p.v, p.ok = ss.sig.Probe()
		}
		points[i] = p
	}

	e.mu.Lock()
	for i, ss := range states {
		ss.push(points[i])
	}
	var moved []alertNote
	for _, rs := range e.rules {
		if note, ok := e.evaluateLocked(rs, now, tick); ok {
			moved = append(moved, note)
		}
	}
	e.mu.Unlock()

	// Publish transitions outside e.mu: reg.Counter takes the registry lock,
	// which a concurrent scrape holds while reading the dvdc_slo_* funcs that
	// take e.mu — incrementing under e.mu is a lock-order inversion (see
	// TestScrapeTickDeadlockRepro).
	for _, n := range moved {
		if reg := e.opts.Registry; reg != nil {
			reg.Counter("dvdc_alert_transitions_total", "rule", n.rule, "to", n.to).Inc()
		}
		e.opts.Recorder.Alert(n.rule, n.to,
			"value", fmt.Sprintf("%g", n.value),
			"objective", fmt.Sprintf("%g", n.objective),
			"burn_fast", fmt.Sprintf("%.2f", n.burnFast),
			"burn_slow", fmt.Sprintf("%.2f", n.burnSlow),
		)
	}
}

// alertNote carries one transition's side effects — the metrics counter bump
// and the flight-recorder stamp — out of the evaluator lock.
type alertNote struct {
	rule, to                             string
	value, objective, burnFast, burnSlow float64
}

// evaluateLocked recomputes one rule's windows and advances its state
// machine. A state change is returned as an alertNote for the caller to
// publish after releasing e.mu.
func (e *Evaluator) evaluateLocked(rs *ruleState, now time.Time, tick int64) (alertNote, bool) {
	ss := e.signals[rs.rule.Signal]
	fastVal, fastN := windowMeasure(ss, rs.rule, rs.rule.FastWindow, now)
	slowVal, slowN := windowMeasure(ss, rs.rule, rs.rule.SlowWindow, now)
	rs.value = fastVal
	rs.samples = fastN
	rs.burnFast = fastVal / rs.rule.Objective
	rs.burnSlow = slowVal / rs.rule.Objective
	hasData := fastN >= rs.rule.MinSamples && slowN >= rs.rule.MinSamples

	switch rs.state {
	case StateFiring:
		// Resolve on fast-window recovery (or the signal going quiet): the
		// slow window keeps the fault in view long after it is over, and an
		// alert that cannot resolve is an alert nobody trusts.
		if fastN < rs.rule.MinSamples || rs.burnFast < rs.rule.FastBurn {
			return e.transitionLocked(rs, StateResolved, now, tick), true
		}
	default:
		if hasData && rs.burnFast >= rs.rule.FastBurn && rs.burnSlow >= rs.rule.SlowBurn {
			return e.transitionLocked(rs, StateFiring, now, tick), true
		}
	}
	return alertNote{}, false
}

// transitionLocked advances the state machine and records history under e.mu;
// the returned note defers the cross-lock side effects to the caller.
func (e *Evaluator) transitionLocked(rs *ruleState, to string, now time.Time, tick int64) alertNote {
	rs.state = to
	rs.since = now
	if to == StateFiring {
		rs.fired++
	}
	e.history = append(e.history, Transition{Rule: rs.rule.Name, To: to, At: now, Tick: tick})
	if len(e.history) > 256 {
		e.history = e.history[len(e.history)-256:]
	}
	return alertNote{
		rule: rs.rule.Name, to: to,
		value: rs.value, objective: rs.rule.Objective,
		burnFast: rs.burnFast, burnSlow: rs.burnSlow,
	}
}

// windowMeasure computes a rule's measure over one window ending now.
// The baseline for counters and histograms is the newest sample at or before
// the window start, falling back to the oldest sample for partial windows so
// young processes can still alert.
func windowMeasure(ss *signalState, r Rule, w time.Duration, now time.Time) (float64, int) {
	start := now.Add(-w)
	samples := ss.samples
	if len(samples) == 0 {
		return 0, 0
	}
	switch ss.sig.Kind {
	case KindGauge:
		var sum float64
		var n int
		for _, p := range samples {
			if p.ok && p.t.After(start) {
				sum += p.v
				n++
			}
		}
		if n == 0 {
			return 0, 0
		}
		return sum / float64(n), n
	case KindCounter:
		base, latest, n := windowEnds(samples, start)
		if n == 0 || latest == nil || base == nil || latest.t.Sub(base.t) <= 0 {
			return 0, 0
		}
		delta := latest.v - base.v
		if delta < 0 { // counter reset (process restart)
			delta = latest.v
		}
		return delta / latest.t.Sub(base.t).Seconds(), n
	case KindHist:
		base, latest, _ := windowEnds(samples, start)
		if latest == nil || base == nil {
			return 0, 0
		}
		delta := latest.hist.Sub(base.hist)
		if delta.Total <= 0 {
			return 0, 0
		}
		return delta.Quantile(r.Quantile), int(delta.Total)
	}
	return 0, 0
}

// windowEnds picks the baseline and latest valid samples around a window
// start, returning how many valid samples fall inside the window.
func windowEnds(samples []sample, start time.Time) (base, latest *sample, n int) {
	for i := range samples {
		p := &samples[i]
		if !p.ok {
			continue
		}
		// Newest sample at or before the window start; seeded with the
		// oldest valid sample so a partial window still has a baseline.
		if base == nil || !p.t.After(start) {
			base = p
		}
		if p.t.After(start) {
			n++
		}
		latest = p
	}
	if latest == base {
		return base, latest, 0
	}
	return base, latest, n
}

// Start launches the background ticker. Refused (panics) in FixedStep mode,
// which exists precisely so tests control every tick.
func (e *Evaluator) Start() {
	if e == nil {
		return
	}
	if e.opts.FixedStep > 0 {
		panic("health: Start is incompatible with FixedStep (manual Tick only)")
	}
	go func() {
		defer close(e.done)
		t := time.NewTicker(e.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-e.stop:
				return
			case <-t.C:
				e.Tick()
			}
		}
	}()
}

// Stop halts the background ticker (idempotent; no-op if never started).
func (e *Evaluator) Stop() {
	if e == nil {
		return
	}
	e.stopOnce.Do(func() { close(e.stop) })
	select {
	case <-e.done:
	case <-time.After(time.Second):
	}
}

// Firing returns the names of currently firing rules, sorted.
func (e *Evaluator) Firing() []string {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for _, rs := range e.rules {
		if rs.state == StateFiring {
			out = append(out, rs.rule.Name)
		}
	}
	sort.Strings(out)
	return out
}

// History snapshots the bounded transition log, oldest first.
func (e *Evaluator) History() []Transition {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Transition(nil), e.history...)
}

// Report snapshots every rule's current evaluation, sorted by rule name.
func (e *Evaluator) Report() Report {
	if e == nil {
		return Report{Healthy: true}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	rep := Report{Time: e.now(), Healthy: true, Ticks: e.ticks}
	for _, rs := range e.rules {
		rep.Rules = append(rep.Rules, RuleStatus{
			Name:      rs.rule.Name,
			Signal:    rs.rule.Signal,
			State:     rs.state,
			Since:     rs.since,
			Value:     rs.value,
			Objective: rs.rule.Objective,
			Unit:      rs.rule.Unit,
			BurnFast:  rs.burnFast,
			BurnSlow:  rs.burnSlow,
			Samples:   rs.samples,
			Fired:     rs.fired,
		})
	}
	sort.Slice(rep.Rules, func(i, j int) bool { return rep.Rules[i].Name < rep.Rules[j].Name })
	for _, r := range rep.Rules {
		if r.State == StateFiring {
			rep.Healthy = false
		}
	}
	return rep
}

// Mount serves the report as JSON on GET /api/v1/health, beside the service's
// /api/v1 endpoints on the same -obs-addr mux.
func (e *Evaluator) Mount() obs.Mount {
	return func(mux *http.ServeMux) {
		mux.HandleFunc("/api/v1/health", func(w http.ResponseWriter, req *http.Request) {
			if req.Method != http.MethodGet {
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(e.Report()) //nolint:errcheck
		})
	}
}
