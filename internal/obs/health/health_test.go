package health

import (
	"strings"
	"testing"
	"time"

	"dvdc/internal/obs"
)

// tickEval builds a FixedStep evaluator over a fresh registry: every Tick
// advances a virtual clock by exactly one second, so state timelines are
// golden-testable.
func tickEval(t *testing.T) (*Evaluator, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	e := New(Options{Registry: reg, Interval: time.Second, Retention: time.Minute, FixedStep: time.Second})
	return e, reg
}

// TestFireAndResolveTimeline scripts a slow-round fault window against a
// windowed-p99 rule and pins the exact tick of every alert transition.
func TestFireAndResolveTimeline(t *testing.T) {
	e, reg := tickEval(t)
	rounds := reg.Histogram("dvdc_round_seconds", obs.LatencyBuckets())
	e.AddSignal(HistSignal(reg, "round_time", "dvdc_round_seconds"))
	e.AddRule(Rule{
		Name: "round_time_p99", Signal: "round_time", Unit: "s",
		Objective:  0.1,
		FastWindow: 3 * time.Second, SlowWindow: 8 * time.Second,
	})

	state := func() string { return e.Report().Rules[0].State }
	// Ticks 1..5: healthy 10ms rounds.
	for i := 0; i < 5; i++ {
		rounds.Observe(0.010)
		e.Tick()
		if got := state(); got != StateOK {
			t.Fatalf("tick %d: state = %s, want ok", i+1, got)
		}
	}
	// Ticks 6..12: a slow node pushes rounds to 500ms. Both windows see the
	// violation immediately (p99 of a small window is its max), so the rule
	// fires on the first bad tick.
	for i := 0; i < 7; i++ {
		rounds.Observe(0.500)
		e.Tick()
		if got := state(); got != StateFiring {
			t.Fatalf("fault tick %d: state = %s, want firing", i+6, got)
		}
	}
	if v, ok := reg.Value("dvdc_alert_firing", "rule", "round_time_p99"); !ok || v != 1 {
		t.Fatalf("dvdc_alert_firing = %v,%v, want 1,true", v, ok)
	}
	if len(e.Firing()) != 1 {
		t.Fatalf("Firing() = %v, want [round_time_p99]", e.Firing())
	}
	// Ticks 13..20: fault healed. The fast window still spans bad samples for
	// two ticks; the first all-clean fast window is tick 15.
	for i := 13; i <= 20; i++ {
		rounds.Observe(0.010)
		e.Tick()
		want := StateFiring
		if i >= 15 {
			want = StateResolved
		}
		if got := state(); got != want {
			t.Fatalf("heal tick %d: state = %s, want %s", i, got, want)
		}
	}

	hist := e.History()
	if len(hist) != 2 {
		t.Fatalf("history = %+v, want exactly fire+resolve", hist)
	}
	if hist[0].To != StateFiring || hist[0].Tick != 6 {
		t.Errorf("first transition = %+v, want firing at tick 6", hist[0])
	}
	if hist[1].To != StateResolved || hist[1].Tick != 15 {
		t.Errorf("second transition = %+v, want resolved at tick 15", hist[1])
	}
	if v, _ := reg.Value("dvdc_alert_firing", "rule", "round_time_p99"); v != 0 {
		t.Errorf("dvdc_alert_firing after resolve = %v, want 0", v)
	}
	if got := reg.Counter("dvdc_alert_transitions_total", "rule", "round_time_p99", "to", "firing").Value(); got != 1 {
		t.Errorf("transitions{firing} = %d, want 1", got)
	}
	rep := e.Report()
	if rep.Healthy != true || rep.Rules[0].Fired != 1 {
		t.Errorf("report = healthy %v fired %d, want true/1", rep.Healthy, rep.Rules[0].Fired)
	}
}

// TestMedianRuleSuppressesBlip shows the windowed-median form absorbing a
// single outlier observation that a p99 rule would fire on.
func TestMedianRuleSuppressesBlip(t *testing.T) {
	e, reg := tickEval(t)
	rounds := reg.Histogram("dvdc_round_seconds", obs.LatencyBuckets())
	e.AddSignal(HistSignal(reg, "round_time", "dvdc_round_seconds"))
	e.AddRule(Rule{
		Name: "round_time_p50", Signal: "round_time", Unit: "s",
		Objective: 0.1, Quantile: 0.5,
		FastWindow: 4 * time.Second, SlowWindow: 10 * time.Second,
	})
	for i := 1; i <= 12; i++ {
		if i == 6 {
			rounds.Observe(0.500) // one CI hiccup round
		} else {
			rounds.Observe(0.010)
		}
		e.Tick()
		if got := e.Report().Rules[0].State; got != StateOK {
			t.Fatalf("tick %d: state = %s, want ok throughout", i, got)
		}
	}
}

// TestGaugeAndCounterWindows pins the mean/rate window math for the two
// scalar signal kinds.
func TestGaugeAndCounterWindows(t *testing.T) {
	e, _ := tickEval(t)
	var gauge float64
	var counter float64
	e.AddSignal(Signal{Name: "g", Kind: KindGauge, Probe: func() (float64, bool) { return gauge, true }})
	e.AddSignal(Signal{Name: "c", Kind: KindCounter, Probe: func() (float64, bool) { return counter, true }})
	e.AddRule(Rule{Name: "g_high", Signal: "g", Objective: 1, FastWindow: 2 * time.Second, SlowWindow: 4 * time.Second})
	e.AddRule(Rule{Name: "c_rate", Signal: "c", Objective: 1, FastWindow: 2 * time.Second, SlowWindow: 4 * time.Second, MinSamples: 2})

	byName := func(rep Report, name string) RuleStatus {
		for _, r := range rep.Rules {
			if r.Name == name {
				return r
			}
		}
		t.Fatalf("rule %s missing from report", name)
		return RuleStatus{}
	}

	// Counter climbing 3/s, gauge at 0: only the rate rule should fire once
	// two samples exist.
	for i := 0; i < 4; i++ {
		counter += 3
		e.Tick()
	}
	rep := e.Report()
	if g := byName(rep, "g_high"); g.State != StateOK || g.Value != 0 {
		t.Errorf("g_high = %+v, want ok at 0", g)
	}
	if c := byName(rep, "c_rate"); c.State != StateFiring || c.Value != 3 {
		t.Errorf("c_rate = %+v, want firing at 3/s", c)
	}

	// Counter flat, gauge pegged at 5: rate resolves, gauge mean fires.
	for i := 0; i < 6; i++ {
		gauge = 5
		e.Tick()
	}
	rep = e.Report()
	if c := byName(rep, "c_rate"); c.State != StateResolved || c.Value != 0 {
		t.Errorf("c_rate = %+v, want resolved at 0", c)
	}
	if g := byName(rep, "g_high"); g.State != StateFiring || g.Value != 5 {
		t.Errorf("g_high = %+v, want firing at mean 5", g)
	}
}

// TestCounterResetTolerated pins the restart path: a counter going backwards
// is read as "reset", not a negative rate.
func TestCounterResetTolerated(t *testing.T) {
	e, _ := tickEval(t)
	var counter float64
	e.AddSignal(Signal{Name: "c", Kind: KindCounter, Probe: func() (float64, bool) { return counter, true }})
	e.AddRule(Rule{Name: "c_rate", Signal: "c", Objective: 100, FastWindow: 3 * time.Second, SlowWindow: 6 * time.Second})
	counter = 50
	e.Tick()
	counter = 2 // process restarted; counter restarted from zero
	e.Tick()
	v := e.Report().Rules[0].Value
	if v < 0 {
		t.Fatalf("rate after reset = %v, want >= 0", v)
	}
}

// TestHealthzProviderInstalled checks New wires /healthz to the evaluator.
func TestHealthzProviderInstalled(t *testing.T) {
	e, reg := tickEval(t)
	fn := reg.Healthz()
	if fn == nil {
		t.Fatal("no healthz provider installed")
	}
	ok, body := fn(true)
	if !ok {
		t.Fatalf("empty evaluator reports unhealthy")
	}
	if _, isReport := body.(Report); !isReport {
		t.Fatalf("verbose body = %T, want health.Report", body)
	}
	_ = e
}

// TestRenderReportsGolden pins the renderer's exact output under the virtual
// clock, including the firing star and the verdict line.
func TestRenderReportsGolden(t *testing.T) {
	e, reg := tickEval(t)
	rounds := reg.Histogram("dvdc_round_seconds", obs.LatencyBuckets())
	e.AddSignal(HistSignal(reg, "round_time", "dvdc_round_seconds"))
	e.AddRule(Rule{
		Name: "round_time_p99", Signal: "round_time", Unit: "s",
		Objective: 0.1, FastWindow: 3 * time.Second, SlowWindow: 8 * time.Second,
	})
	for i := 0; i < 4; i++ {
		rounds.Observe(0.5)
		e.Tick()
	}
	got := RenderReports([]SourceReport{{Source: "127.0.0.1:7500", Report: e.Report()}}, 120)
	// Deterministic under the virtual clock: p99 of the 3-observation fast
	// window interpolates to exactly 497.5ms inside the 0.5s bucket.
	for _, want := range []string{
		"SOURCE", "RULE", "STATE", "BURN f/s",
		"round_time_p99", "*firing", "497.5ms", "100ms", " 5.0/5.0", "UNHEALTHY: 1 rule(s) firing",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("render missing %q:\n%s", want, got)
		}
	}
	again := RenderReports([]SourceReport{{Source: "127.0.0.1:7500", Report: e.Report()}}, 120)
	if got != again {
		t.Errorf("render not deterministic:\n%s\n---\n%s", got, again)
	}
}

// TestAlertStampedIntoRecorder checks transitions land in the flight
// recorder as kind "alert" entries.
func TestAlertStampedIntoRecorder(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewFlightRecorder(64)
	e := New(Options{Registry: reg, Recorder: rec, FixedStep: time.Second})
	var v float64
	e.AddSignal(Signal{Name: "g", Kind: KindGauge, Probe: func() (float64, bool) { return v, true }})
	e.AddRule(Rule{Name: "g_high", Signal: "g", Objective: 1, FastWindow: 2 * time.Second, SlowWindow: 2 * time.Second})
	v = 9
	e.Tick()
	entries := rec.Entries()
	if len(entries) != 1 || entries[0].Kind != "alert" || entries[0].Name != "g_high" {
		t.Fatalf("recorder entries = %+v, want one alert for g_high", entries)
	}
	if entries[0].Attrs["state"] != StateFiring {
		t.Errorf("alert attrs = %v, want state=firing", entries[0].Attrs)
	}
}

// TestDefaultRulesCarryTuningHistory pins the adaptive-loop tie-in: the
// default rule set samples the tuning gauges — chunk size, pipeline width,
// checkpoint interval — so the health report records what the tuning was
// alongside the SLOs it influences. The rules are sanity bounds, not SLOs:
// live values keep them ok, and each rule's reported Value tracks the gauge,
// including across a mid-run retune.
func TestDefaultRulesCarryTuningHistory(t *testing.T) {
	e, reg := tickEval(t)
	chunk := float64(64 << 10)
	reg.GaugeFunc("dvdc_chunk_size_bytes", func() float64 { return chunk })
	reg.GaugeFunc("dvdc_pipeline_width", func() float64 { return 4 })
	reg.GaugeFunc("dvdc_checkpoint_interval_seconds", func() float64 { return 30 })
	InstallDefaultRules(e, reg, Objectives{})
	for i := 0; i < 3; i++ {
		e.Tick()
	}
	rep := e.Report()
	if !rep.Healthy {
		t.Fatalf("report unhealthy under sane tuning: %+v", rep.Rules)
	}
	byName := map[string]RuleStatus{}
	for _, rs := range rep.Rules {
		byName[rs.Name] = rs
	}
	for name, want := range map[string]float64{
		"chunk_size_sane":          64 << 10,
		"pipeline_width_sane":      4,
		"checkpoint_interval_sane": 30,
	} {
		rs, ok := byName[name]
		if !ok {
			t.Fatalf("default rules missing %s; have %v", name, rep.Rules)
		}
		if rs.State != StateOK || rs.Value != want {
			t.Errorf("%s = state %s value %v, want ok/%v", name, rs.State, rs.Value, want)
		}
	}

	// A retune shows up once the fast window rolls over to the new value.
	chunk = 128 << 10
	for i := 0; i < 12; i++ {
		e.Tick()
	}
	for _, rs := range e.Report().Rules {
		if rs.Name == "chunk_size_sane" && rs.Value != 128<<10 {
			t.Errorf("chunk_size_sane after retune = %v, want %v", rs.Value, 128<<10)
		}
	}
}
