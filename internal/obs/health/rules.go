package health

import (
	"time"

	"dvdc/internal/obs"
)

// Objectives are the thresholds for the default cluster rule set. Zero fields
// take the documented defaults; durations are windowed p99s unless noted.
type Objectives struct {
	// RoundTimeP99 bounds the whole-round wall clock (dvdc_round_seconds).
	// Default 500ms: the paper's 4-node/12-VM layout runs ~18ms rounds, so
	// half a second sustained means something is badly wrong.
	RoundTimeP99 time.Duration
	// RecoveryP99 bounds the recovery phase (dvdc_round_phase_seconds,
	// phase="recovery"). Default 2s.
	RecoveryP99 time.Duration
	// FsyncP99 bounds journal fsync latency
	// (dvdc_service_journal_fsync_seconds). Default 250ms.
	FsyncP99 time.Duration
	// MaxOutliers bounds the mean number of peers the OutlierTracker flags
	// (dvdc_peer_latency_outlier). Default 0.5: any peer flagged for a
	// sustained window fires straggler_recurrence.
	MaxOutliers float64
	// MaxBacklog bounds the mean number of Pending+Scheduled requests
	// (dvdc_service_requests). Default 8.
	MaxBacklog float64
	// MaxRetryRate bounds reconciler retries per second
	// (dvdc_service_retries_total). Default 0.5/s.
	MaxRetryRate float64
}

func (o Objectives) withDefaults() Objectives {
	if o.RoundTimeP99 <= 0 {
		o.RoundTimeP99 = 500 * time.Millisecond
	}
	if o.RecoveryP99 <= 0 {
		o.RecoveryP99 = 2 * time.Second
	}
	if o.FsyncP99 <= 0 {
		o.FsyncP99 = 250 * time.Millisecond
	}
	if o.MaxOutliers <= 0 {
		o.MaxOutliers = 0.5
	}
	if o.MaxBacklog <= 0 {
		o.MaxBacklog = 8
	}
	if o.MaxRetryRate <= 0 {
		o.MaxRetryRate = 0.5
	}
	return o
}

// HistSignal builds a KindHist signal snapshotting one registry histogram.
func HistSignal(reg *obs.Registry, name, metric string, kv ...string) Signal {
	return Signal{Name: name, Kind: KindHist, HistProbe: func() (obs.HistSnapshot, bool) {
		return reg.HistogramSnapshot(metric, kv...)
	}}
}

// GaugeSignal builds a KindGauge signal summing one scalar family.
func GaugeSignal(reg *obs.Registry, name, metric string) Signal {
	return Signal{Name: name, Kind: KindGauge, Probe: func() (float64, bool) {
		return reg.FamilySum(metric), true
	}}
}

// CounterSignal builds a KindCounter signal summing one counter family.
func CounterSignal(reg *obs.Registry, name, metric string) Signal {
	return Signal{Name: name, Kind: KindCounter, Probe: func() (float64, bool) {
		return reg.FamilySum(metric), true
	}}
}

// InstallDefaultRules wires the standard cluster SLOs onto an evaluator:
// round-time p99, recovery duration, journal fsync latency, straggler
// recurrence (OutlierTracker flags), and service reconcile backlog/retry
// rate. Signals a process never feeds (a node daemon has no reconciler)
// simply never accumulate data and their rules stay ok.
func InstallDefaultRules(e *Evaluator, reg *obs.Registry, o Objectives) {
	o = o.withDefaults()

	e.AddSignal(HistSignal(reg, "round_time", "dvdc_round_seconds"))
	e.AddRule(Rule{
		Name: "round_time_p99", Signal: "round_time", Unit: "s",
		Objective: o.RoundTimeP99.Seconds(),
	})

	e.AddSignal(HistSignal(reg, "recovery_time", "dvdc_round_phase_seconds", "phase", "recovery"))
	e.AddRule(Rule{
		Name: "recovery_p99", Signal: "recovery_time", Unit: "s",
		Objective: o.RecoveryP99.Seconds(),
	})

	e.AddSignal(HistSignal(reg, "journal_fsync", "dvdc_service_journal_fsync_seconds"))
	e.AddRule(Rule{
		Name: "journal_fsync_p99", Signal: "journal_fsync", Unit: "s",
		Objective: o.FsyncP99.Seconds(),
	})

	// The OutlierTracker exports dvdc_peer_latency_outlier{peer} as 0/1 func
	// gauges; the family sum is "how many peers are flagged right now".
	e.AddSignal(GaugeSignal(reg, "stragglers", "dvdc_peer_latency_outlier"))
	e.AddRule(Rule{
		Name: "straggler_recurrence", Signal: "stragglers",
		Objective: o.MaxOutliers,
	})

	e.AddSignal(Signal{Name: "backlog", Kind: KindGauge, Probe: func() (float64, bool) {
		var sum float64
		for _, p := range []string{"Pending", "Scheduled"} {
			if v, ok := reg.Value("dvdc_service_requests", "phase", p); ok {
				sum += v
			}
		}
		return sum, true
	}})
	e.AddRule(Rule{
		Name: "reconcile_backlog", Signal: "backlog",
		Objective: o.MaxBacklog,
	})

	e.AddSignal(CounterSignal(reg, "retries", "dvdc_service_retries_total"))
	e.AddRule(Rule{
		Name: "retry_rate", Signal: "retries",
		Objective: o.MaxRetryRate,
	})

	// The adaptive control loop's tuning state rides along as informational
	// rules with sanity-bound objectives: the point is the evaluator's
	// per-signal rings, which keep a history of chunk size, pipeline width,
	// and checkpoint interval next to the SLOs they influence — when
	// round_time_p99 fires, the health report already answers "what was the
	// tuning at the time". A process that never exports the gauges reads the
	// family sum as zero and the rules stay ok.
	e.AddSignal(GaugeSignal(reg, "chunk_size", "dvdc_chunk_size_bytes"))
	e.AddRule(Rule{
		Name: "chunk_size_sane", Signal: "chunk_size",
		Objective: float64(1 << 30),
	})
	e.AddSignal(GaugeSignal(reg, "pipeline_width", "dvdc_pipeline_width"))
	e.AddRule(Rule{
		Name: "pipeline_width_sane", Signal: "pipeline_width",
		Objective: 1024,
	})
	e.AddSignal(GaugeSignal(reg, "checkpoint_interval", "dvdc_checkpoint_interval_seconds"))
	e.AddRule(Rule{
		Name: "checkpoint_interval_sane", Signal: "checkpoint_interval", Unit: "s",
		Objective: 24 * time.Hour.Seconds(),
	})
}
