package health

import (
	"io"
	"testing"
	"time"

	"dvdc/internal/obs"
)

// Repro for the r.mu/e.mu lock-order inversion: a prometheus scrape holds the
// registry lock while reading dvdc_slo_* gauge funcs (which take e.mu), while
// Tick holds e.mu during an alert transition and calls reg.Counter (r.mu).
func TestScrapeTickDeadlockRepro(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Options{Registry: reg, FixedStep: time.Second})
	val := 0.0
	e.AddSignal(Signal{Name: "s", Kind: KindGauge, Probe: func() (float64, bool) { return val, true }})
	e.AddRule(Rule{Name: "r", Signal: "s", Objective: 1, FastWindow: time.Second, SlowWindow: time.Second})

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			// toggle above/below objective so every few ticks transitions
			if i%2 == 0 {
				val = 10
			} else {
				val = 0
			}
			e.Tick()
		}
	}()
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for i := 0; i < 5000; i++ {
			reg.WritePrometheus(io.Discard)
		}
	}()
	timeout := time.After(20 * time.Second)
	for _, ch := range []chan struct{}{done, scrapeDone} {
		select {
		case <-ch:
		case <-timeout:
			t.Fatal("deadlock: Tick and WritePrometheus wedged on r.mu/e.mu inversion")
		}
	}
}
