package health

import (
	"fmt"
	"strings"
	"time"
)

// SourceReport pairs one scraped health report with where it came from.
type SourceReport struct {
	Source string
	Report Report
	Err    error
}

// RenderReports renders one table row per rule per source, firing rules
// starred, plus a trailing verdict line. Deterministic for golden tests.
func RenderReports(reports []SourceReport, width int) string {
	if width <= 0 {
		width = 100
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-22s %-9s %10s %10s %11s %8s\n",
		"SOURCE", "RULE", "STATE", "VALUE", "OBJECTIVE", "BURN f/s", "FIRED")
	firing := 0
	for _, sr := range reports {
		if sr.Err != nil {
			fmt.Fprintf(&b, "%-22s %s\n", trunc(sr.Source, 22), "ERROR "+sr.Err.Error())
			continue
		}
		for _, r := range sr.Report.Rules {
			state := r.State
			if r.State == StateFiring {
				state = "*firing"
				firing++
			}
			fmt.Fprintf(&b, "%-22s %-22s %-9s %10s %10s %5.1f/%-5.1f %8d\n",
				trunc(sr.Source, 22), trunc(r.Name, 22), state,
				renderValue(r.Value, r.Unit), renderValue(r.Objective, r.Unit),
				capBurn(r.BurnFast), capBurn(r.BurnSlow), r.Fired)
		}
	}
	if firing > 0 {
		fmt.Fprintf(&b, "UNHEALTHY: %d rule(s) firing\n", firing)
	} else {
		b.WriteString("healthy\n")
	}
	out := b.String()
	if width < 200 {
		lines := strings.Split(out, "\n")
		for i, l := range lines {
			if len(l) > width {
				lines[i] = l[:width]
			}
		}
		out = strings.Join(lines, "\n")
	}
	return out
}

// renderValue formats seconds-valued rules as rounded durations and
// everything else as a short float.
func renderValue(v float64, unit string) string {
	if unit == "s" {
		d := time.Duration(v * float64(time.Second))
		switch {
		case d >= time.Second:
			return d.Round(10 * time.Millisecond).String()
		case d >= time.Millisecond:
			return d.Round(10 * time.Microsecond).String()
		default:
			return d.Round(time.Microsecond).String()
		}
	}
	return fmt.Sprintf("%.2f", v)
}

// capBurn keeps runaway burn ratios from blowing up the column layout.
func capBurn(b float64) float64 {
	if b > 99.9 {
		return 99.9
	}
	return b
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
