package obs

import (
	"runtime"
	"sync"
)

// gcPauseBuckets spans 10µs to 1s: GC pauses sit well below request
// latencies, so LatencyBuckets would waste its resolution.
func gcPauseBuckets() []float64 {
	return []float64{
		0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
		0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1,
	}
}

// MountGoRuntime registers the process's own Go runtime vitals on the
// registry: dvdc_go_goroutines, dvdc_go_heap_bytes, dvdc_go_gc_total as func
// series, plus a dvdc_go_gc_pause_seconds histogram fed from the runtime's
// pause ring by an OnCollect hook (so pauses accumulate once per scrape, not
// per call). Idempotent: mounting twice on the same registry replaces the
// hook instead of double-feeding the histogram. Health rules read these to
// watch the controller itself.
func MountGoRuntime(r *Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("dvdc_go_goroutines", func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("dvdc_go_heap_bytes", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	r.CounterFunc("dvdc_go_gc_total", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.NumGC)
	})
	pause := r.Histogram("dvdc_go_gc_pause_seconds", gcPauseBuckets())
	var mu sync.Mutex
	var lastGC uint32
	r.OnCollect("go-runtime", func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		mu.Lock()
		defer mu.Unlock()
		n := ms.NumGC - lastGC
		if n > uint32(len(ms.PauseNs)) {
			n = uint32(len(ms.PauseNs))
		}
		// PauseNs is a circular buffer indexed by (NumGC+255)%256 for the most
		// recent pause; walk the n new entries newest-first.
		for i := uint32(0); i < n; i++ {
			ns := ms.PauseNs[(ms.NumGC+255-i)%uint32(len(ms.PauseNs))]
			pause.Observe(float64(ns) / 1e9)
		}
		lastGC = ms.NumGC
	})
}
