package obs

import (
	"sync"
	"testing"
)

func TestRingFIFOAndEviction(t *testing.T) {
	r := NewRing[int](3)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("empty ring snapshot = %v", got)
	}
	r.Push(1)
	r.Push(2)
	if got, want := r.Len(), 2; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	r.Push(3)
	r.Push(4) // evicts 1
	r.Push(5) // evicts 2
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0] != 3 || snap[1] != 4 || snap[2] != 5 {
		t.Fatalf("snapshot = %v, want [3 4 5]", snap)
	}
	if got, want := r.Dropped(), int64(2); got != want {
		t.Fatalf("Dropped = %d, want %d", got, want)
	}
	if got, want := r.Cap(), 3; got != want {
		t.Fatalf("Cap = %d, want %d", got, want)
	}
}

func TestRingZeroSizeClamped(t *testing.T) {
	r := NewRing[string](0)
	r.Push("a")
	r.Push("b")
	if snap := r.Snapshot(); len(snap) != 1 || snap[0] != "b" {
		t.Fatalf("snapshot = %v, want [b]", snap)
	}
	if r.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", r.Dropped())
	}
}

func TestRingNilSafe(t *testing.T) {
	var r *Ring[int]
	r.Push(1)
	if r.Len() != 0 || r.Cap() != 0 || r.Dropped() != 0 || r.Snapshot() != nil {
		t.Fatal("nil ring must be a no-op")
	}
}

func TestRingConcurrentPush(t *testing.T) {
	const (
		workers = 8
		per     = 1000
		size    = 64
	)
	r := NewRing[int](size)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Push(i)
			}
		}()
	}
	wg.Wait()
	if got, want := r.Len(), size; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	if got, want := r.Dropped(), int64(workers*per-size); got != want {
		t.Fatalf("Dropped = %d, want %d", got, want)
	}
}

func TestTracerRingBoundsSpans(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Start(SpanContext{}, "s", "lane").Finish()
	}
	if got, want := len(tr.Spans()), 4; got != want {
		t.Fatalf("ring holds %d spans, want %d", got, want)
	}
	if got, want := tr.Dropped(), int64(6); got != want {
		t.Fatalf("Dropped = %d, want %d", got, want)
	}
}

func TestTracerTap(t *testing.T) {
	tr := NewTracer(16)
	var got []Span
	tr.SetTap(func(s Span) { got = append(got, s) })
	tr.Start(SpanContext{}, "a", "l").Finish()
	tr.Start(SpanContext{}, "b", "l").Finish()
	tr.SetTap(nil)
	tr.Start(SpanContext{}, "c", "l").Finish()
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "b" {
		t.Fatalf("tap saw %v, want spans a, b", got)
	}
}
