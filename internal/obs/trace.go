// Package obs is the runtime's dependency-light observability core: a span
// tracer whose trace ids ride the wire protocol's message headers, a metrics
// registry of counters/gauges/histograms with Prometheus text exposition, and
// an ASCII phase-timeline renderer for traces. Everything is plain stdlib and
// safe for concurrent use; every entry point tolerates a nil receiver so
// instrumented code needs no "is observability on?" branches.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext names a position in a trace: the trace id shared by every span
// of one protocol round, and the span id of the immediate parent. The zero
// value means "untraced"; it propagates through instrumented code as a no-op.
type SpanContext struct {
	Trace uint64
	Span  uint64
}

// Valid reports whether the context belongs to a real trace.
func (c SpanContext) Valid() bool { return c.Trace != 0 }

// Event is an instantaneous annotation on a span (a fault injection, a
// shipped delta).
type Event struct {
	Time  time.Time         `json:"time"`
	Name  string            `json:"name"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Span is one finished span as stored in the ring and emitted to the JSONL
// sink. Instantaneous events emitted via Tracer.Event become spans whose
// Start equals End.
type Span struct {
	Trace  uint64            `json:"trace"`
	ID     uint64            `json:"span"`
	Parent uint64            `json:"parent,omitempty"`
	Name   string            `json:"name"`
	Lane   string            `json:"lane,omitempty"`
	Start  time.Time         `json:"start"`
	End    time.Time         `json:"end"`
	Attrs  map[string]string `json:"attrs,omitempty"`
	Events []Event           `json:"events,omitempty"`
	Err    string            `json:"err,omitempty"`
}

// Duration returns the span's wall-clock extent (0 for instant events).
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Instant reports whether the span is a point event rather than an interval.
func (s Span) Instant() bool { return !s.End.After(s.Start) }

// Tracer mints span ids, keeps the most recent finished spans in a fixed
// ring, and optionally streams every finished span to a JSONL sink. A nil
// *Tracer is a valid no-op tracer: Start/Child/Event return nil/do nothing.
type Tracer struct {
	idBase uint64
	idSeq  atomic.Uint64
	open   atomic.Int64

	ring *Ring[Span]

	mu      sync.Mutex
	sink    *bufio.Writer
	sinkErr error
	encBuf  []byte // sink encode scratch, reused under mu
	tap     func(Span)
}

// NewTracer builds a tracer whose ring keeps the last ringSize finished
// spans (<= 0 picks 8192). The ring is a hard bound on what /spans can ever
// serve: when it wraps, the oldest spans are evicted and counted (Dropped).
func NewTracer(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = 8192
	}
	// Ids mix a random per-process base with a sequence so they are unique in
	// process and unlikely to collide across processes writing one sink.
	return &Tracer{idBase: rand.Uint64(), ring: NewRing[Span](ringSize)} //nolint:gosec
}

// Dropped returns how many finished spans the ring evicted oldest-first to
// stay within its bound (exported as dvdc_spans_dropped_total).
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.ring.Dropped()
}

// SetTap attaches a function called with every subsequently finished span
// (nil detaches). The flight recorder taps the tracer this way; the tap runs
// on the finishing goroutine and must be fast.
func (t *Tracer) SetTap(fn func(Span)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tap = fn
	t.mu.Unlock()
}

// SetSink streams every subsequently finished span to w as one JSON object
// per line. Pass nil to detach. The first write error is sticky (SinkErr);
// later spans still land in the ring.
func (t *Tracer) SetSink(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sink != nil {
		t.sink.Flush() //nolint:errcheck
	}
	if w == nil {
		t.sink = nil
		return
	}
	t.sink = bufio.NewWriter(w)
}

// Flush flushes the JSONL sink (no-op without one).
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sink == nil {
		return t.sinkErr
	}
	if err := t.sink.Flush(); err != nil && t.sinkErr == nil {
		t.sinkErr = err
	}
	return t.sinkErr
}

// SinkErr returns the first error the JSONL sink hit (nil if none).
func (t *Tracer) SinkErr() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sinkErr
}

// newID mints a process-unique non-zero id.
func (t *Tracer) newID() uint64 {
	n := t.idSeq.Add(1)
	z := t.idBase + n*0x9e3779b97f4a7c15
	z ^= z >> 31
	if z == 0 {
		z = n
	}
	return z
}

// Start opens a span. With an invalid parent the span roots a fresh trace
// (its trace id doubles as the round's trace id); with a valid parent it
// joins that trace as a child. Returns nil on a nil tracer.
func (t *Tracer) Start(parent SpanContext, name, lane string) *Active {
	if t == nil {
		return nil
	}
	id := t.newID()
	trace := parent.Trace
	if trace == 0 {
		trace = id
	}
	t.open.Add(1)
	return &Active{t: t, s: Span{
		Trace: trace, ID: id, Parent: parent.Span,
		Name: name, Lane: lane, Start: time.Now(),
	}}
}

// Child opens a span only when parent is valid: instrumentation on shared
// code paths (message handlers, pools) uses it so untraced traffic creates
// no orphan root traces. Returns nil on a nil tracer or invalid parent.
func (t *Tracer) Child(parent SpanContext, name, lane string) *Active {
	if t == nil || !parent.Valid() {
		return nil
	}
	return t.Start(parent, name, lane)
}

// Event records an instantaneous span (Start == End) under parent; the chaos
// layer uses it to pin injected faults onto the RPC attempt they hit.
// Untraced parents are dropped.
func (t *Tracer) Event(parent SpanContext, name, lane string, kv ...string) {
	if t == nil || !parent.Valid() {
		return
	}
	now := time.Now()
	s := Span{
		Trace: parent.Trace, ID: t.newID(), Parent: parent.Span,
		Name: name, Lane: lane, Start: now, End: now, Attrs: kvMap(kv),
	}
	t.record(s)
}

// OpenSpans counts spans started but not yet finished; the soak harness
// asserts it returns to zero after every round (a closed span tree).
func (t *Tracer) OpenSpans() int64 {
	if t == nil {
		return 0
	}
	return t.open.Load()
}

// record lands a finished span in the ring, the sink, and the tap.
func (t *Tracer) record(s Span) {
	t.ring.Push(s)
	t.mu.Lock()
	if t.sink != nil && t.sinkErr == nil {
		// Hand-rolled encoding (identical bytes to encoding/json, pinned by
		// TestSpanAppendJSON): reflection-based Encode was the single biggest
		// CPU item of the span hot path under -cpuprofile.
		t.encBuf = s.appendJSON(t.encBuf[:0])
		t.encBuf = append(t.encBuf, '\n')
		if _, err := t.sink.Write(t.encBuf); err != nil {
			t.sinkErr = err
		}
	}
	tap := t.tap
	t.mu.Unlock()
	if tap != nil {
		tap(s)
	}
}

// appendJSON appends the span's one-line JSON encoding, byte-identical to
// encoding/json's (field order, omitempty, sorted attr keys, HTML escaping).
func (s Span) appendJSON(b []byte) []byte {
	b = append(b, `{"trace":`...)
	b = strconv.AppendUint(b, s.Trace, 10)
	b = append(b, `,"span":`...)
	b = strconv.AppendUint(b, s.ID, 10)
	if s.Parent != 0 {
		b = append(b, `,"parent":`...)
		b = strconv.AppendUint(b, s.Parent, 10)
	}
	b = append(b, `,"name":`...)
	b = appendJSONString(b, s.Name)
	if s.Lane != "" {
		b = append(b, `,"lane":`...)
		b = appendJSONString(b, s.Lane)
	}
	b = append(b, `,"start":`...)
	b = appendJSONTime(b, s.Start)
	b = append(b, `,"end":`...)
	b = appendJSONTime(b, s.End)
	if len(s.Attrs) > 0 {
		b = append(b, `,"attrs":`...)
		b = appendJSONAttrs(b, s.Attrs)
	}
	if len(s.Events) > 0 {
		b = append(b, `,"events":[`...)
		for i, e := range s.Events {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"time":`...)
			b = appendJSONTime(b, e.Time)
			b = append(b, `,"name":`...)
			b = appendJSONString(b, e.Name)
			if len(e.Attrs) > 0 {
				b = append(b, `,"attrs":`...)
				b = appendJSONAttrs(b, e.Attrs)
			}
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	if s.Err != "" {
		b = append(b, `,"err":`...)
		b = appendJSONString(b, s.Err)
	}
	return append(b, '}')
}

// appendJSONTime appends a time.Time exactly as its MarshalJSON does
// (quoted RFC 3339 with subsecond precision).
func appendJSONTime(b []byte, t time.Time) []byte {
	b = append(b, '"')
	b = t.AppendFormat(b, time.RFC3339Nano)
	return append(b, '"')
}

// appendJSONAttrs appends a string map as encoding/json does: keys sorted.
func appendJSONAttrs(b []byte, m map[string]string) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b = append(b, '{')
	for i, k := range keys {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendJSONString(b, k)
		b = append(b, ':')
		b = appendJSONString(b, m[k])
	}
	return append(b, '}')
}

// appendJSONString appends a JSON string. The fast path covers the plain
// ASCII the instrumentation emits; anything needing escapes (quotes,
// control characters, HTML characters, non-ASCII) takes encoding/json's own
// path so the escaping rules can never drift.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x7f || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			quoted, _ := json.Marshal(s)
			return append(b, quoted...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// Spans copies the ring, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.ring.Snapshot()
}

// TraceSpans returns the ring's spans belonging to one trace, oldest first.
// It filters inside the ring rather than snapshotting it: callers run this
// once per round against a ring retaining many rounds of spans.
func (t *Tracer) TraceSpans(trace uint64) []Span {
	if t == nil {
		return nil
	}
	return t.ring.Filter(func(s *Span) bool { return s.Trace == trace })
}

// Active is a live span handle. All methods tolerate a nil receiver, so
// callers chain straight off Start/Child without nil checks.
type Active struct {
	mu   sync.Mutex
	t    *Tracer
	s    Span
	done bool
}

// Context returns the handle's span context (zero on nil).
func (a *Active) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: a.s.Trace, Span: a.s.ID}
}

// ContextOr returns the handle's context, or fallback when the handle is nil
// (instrumented code threads the incoming request context through untraced
// sections this way).
func (a *Active) ContextOr(fallback SpanContext) SpanContext {
	if a == nil {
		return fallback
	}
	return a.Context()
}

// ID returns the span id (0 on nil).
func (a *Active) ID() uint64 {
	if a == nil {
		return 0
	}
	return a.s.ID
}

// TraceID returns the trace id (0 on nil).
func (a *Active) TraceID() uint64 {
	if a == nil {
		return 0
	}
	return a.s.Trace
}

// SetAttr attaches one key/value attribute.
func (a *Active) SetAttr(k, v string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.done {
		return
	}
	if a.s.Attrs == nil {
		a.s.Attrs = map[string]string{}
	}
	a.s.Attrs[k] = v
}

// Event appends an instantaneous annotation to the span.
func (a *Active) Event(name string, kv ...string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.done {
		return
	}
	a.s.Events = append(a.s.Events, Event{Time: time.Now(), Name: name, Attrs: kvMap(kv)})
}

// Finish closes the span and publishes it to the ring/sink. Idempotent.
func (a *Active) Finish() { a.finish("") }

// FinishErr closes the span, recording err (nil err == Finish). Idempotent.
func (a *Active) FinishErr(err error) {
	if err == nil {
		a.finish("")
		return
	}
	a.finish(err.Error())
}

func (a *Active) finish(errText string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.done {
		a.mu.Unlock()
		return
	}
	a.done = true
	a.s.End = time.Now()
	a.s.Err = errText
	s := a.s
	t := a.t
	a.mu.Unlock()
	t.open.Add(-1)
	t.record(s)
}

// kvMap folds a "k, v, k, v" list into a map (nil for empty; odd trailing
// keys get an empty value rather than panicking — this runs on fault paths).
func kvMap(kv []string) map[string]string {
	if len(kv) == 0 {
		return nil
	}
	m := make(map[string]string, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		if i+1 < len(kv) {
			m[kv[i]] = kv[i+1]
		} else {
			m[kv[i]] = ""
		}
	}
	return m
}

// ReadJSONL parses spans from a JSONL sink stream (blank lines skipped).
func ReadJSONL(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Span
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(b, &s); err != nil {
			return out, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// GroupTraces splits spans by trace id, ids ordered by each trace's earliest
// span start.
func GroupTraces(spans []Span) ([]uint64, map[uint64][]Span) {
	byTrace := map[uint64][]Span{}
	for _, s := range spans {
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	ids := make([]uint64, 0, len(byTrace))
	for id := range byTrace {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		ti, tj := earliest(byTrace[ids[i]]), earliest(byTrace[ids[j]])
		if ti.Equal(tj) {
			return ids[i] < ids[j]
		}
		return ti.Before(tj)
	})
	return ids, byTrace
}

func earliest(spans []Span) time.Time {
	var t time.Time
	for i, s := range spans {
		if i == 0 || s.Start.Before(t) {
			t = s.Start
		}
	}
	return t
}
