package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Mount is an extra handler set a caller can attach to the observability
// mux — e.g. the service control plane mounts its /api/v1 endpoints beside
// /metrics so one -obs-addr serves both planes.
type Mount func(mux *http.ServeMux)

// NewMux builds the observability HTTP handler: /metrics (Prometheus text
// exposition from reg), /healthz, /spans (the tracer ring as JSON, newest
// last), and the net/http/pprof endpoints under /debug/pprof/. reg and tr
// may be nil; their endpoints then serve empty documents. mounts register
// additional handler sets on the same mux.
func NewMux(reg *Registry, tr *Tracer, mounts ...Mount) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w) //nolint:errcheck // client went away; nothing to do
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		fn := reg.Healthz()
		if fn == nil {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok")
			return
		}
		verbose := req.URL.Query().Get("verbose") != ""
		ok, body := fn(verbose)
		if !verbose {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if !ok {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, "degraded")
				return
			}
			fmt.Fprintln(w, "ok")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(body) //nolint:errcheck
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		spans := tr.Spans()
		if spans == nil {
			spans = []Span{}
		}
		json.NewEncoder(w).Encode(spans) //nolint:errcheck
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, m := range mounts {
		m(mux)
	}
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the observability endpoint on addr (":0" picks a free port).
// It returns immediately; the listener runs until Close. A non-nil registry
// gets a dvdc_up gauge (so /metrics is never empty, which scrapers treat as
// a dead target) and, with a tracer, a live open-span gauge.
func Serve(addr string, reg *Registry, tr *Tracer, mounts ...Mount) (*Server, error) {
	if reg != nil {
		reg.Gauge("dvdc_up").Set(1)
		if tr != nil {
			reg.GaugeFunc("dvdc_obs_open_spans", func() float64 { return float64(tr.OpenSpans()) })
			// The /spans buffer is a bounded ring: when it wraps, the oldest
			// spans are evicted and this counter says how many a scraper missed.
			reg.CounterFunc("dvdc_spans_dropped_total", func() float64 { return float64(tr.Dropped()) })
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: NewMux(reg, tr, mounts...), ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the endpoint.
func (s *Server) Close() error { return s.srv.Close() }
