package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestTracerSpanTree(t *testing.T) {
	tr := NewTracer(64)
	root := tr.Start(SpanContext{}, "round", "coord")
	if root.TraceID() == 0 || root.ID() == 0 {
		t.Fatalf("root ids not minted: %+v", root.Context())
	}
	if root.TraceID() != root.ID() {
		t.Errorf("root span should name its trace: trace %x, span %x", root.TraceID(), root.ID())
	}
	child := tr.Child(root.Context(), "prepare", "")
	if child.TraceID() != root.TraceID() {
		t.Errorf("child trace %x != root trace %x", child.TraceID(), root.TraceID())
	}
	if child.Context().Span == root.ID() {
		t.Error("child span id collided with root")
	}
	if got := tr.OpenSpans(); got != 2 {
		t.Errorf("OpenSpans = %d, want 2", got)
	}
	child.SetAttr("k", "v")
	child.Event("shipped", "vm", "vm-00.01")
	child.FinishErr(errors.New("boom"))
	root.Finish()
	root.Finish() // idempotent
	if got := tr.OpenSpans(); got != 0 {
		t.Errorf("OpenSpans after finish = %d, want 0", got)
	}
	spans := tr.TraceSpans(root.TraceID())
	if len(spans) != 2 {
		t.Fatalf("TraceSpans returned %d spans, want 2", len(spans))
	}
	// Ring stores in finish order: child first.
	if spans[0].Name != "prepare" || spans[0].Err != "boom" || spans[0].Attrs["k"] != "v" {
		t.Errorf("child span mis-stored: %+v", spans[0])
	}
	if len(spans[0].Events) != 1 || spans[0].Events[0].Attrs["vm"] != "vm-00.01" {
		t.Errorf("child events mis-stored: %+v", spans[0].Events)
	}
	if spans[1].Name != "round" || spans[1].Parent != 0 {
		t.Errorf("root span mis-stored: %+v", spans[1])
	}
}

func TestTracerChildNeedsValidParent(t *testing.T) {
	tr := NewTracer(8)
	if sp := tr.Child(SpanContext{}, "x", ""); sp != nil {
		t.Error("Child with invalid parent should be nil")
	}
	tr.Event(SpanContext{}, "x", "") // dropped, not recorded
	if n := len(tr.Spans()); n != 0 {
		t.Errorf("untraced event recorded: %d spans", n)
	}
}

func TestNilTracerAndNilActiveAreSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Start(SpanContext{}, "x", "")
	if sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	sp.SetAttr("k", "v")
	sp.Event("e")
	sp.FinishErr(errors.New("x"))
	sp.Finish()
	if sp.ID() != 0 || sp.TraceID() != 0 || sp.Context().Valid() {
		t.Error("nil Active leaked ids")
	}
	fb := SpanContext{Trace: 7, Span: 9}
	if got := sp.ContextOr(fb); got != fb {
		t.Errorf("ContextOr = %+v, want fallback", got)
	}
	tr.Event(SpanContext{Trace: 1}, "x", "")
	if tr.OpenSpans() != 0 || tr.Spans() != nil || tr.SinkErr() != nil || tr.Flush() != nil {
		t.Error("nil tracer methods not inert")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Start(SpanContext{}, "s", "").Finish()
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start.Before(spans[i-1].Start) {
			t.Error("ring not ordered oldest-first")
		}
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(16)
	tr.SetSink(&buf)
	root := tr.Start(SpanContext{}, "round", "coord")
	tr.Event(root.Context(), "chaos.corrupt", "chaos", "pair", "-1->2")
	root.SetAttr("epoch", "3")
	root.Finish()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("sink emitted %d spans, want 2", len(spans))
	}
	// Event finished first (instant), root second.
	if spans[0].Name != "chaos.corrupt" || spans[0].Parent != root.ID() || spans[0].Trace != root.TraceID() {
		t.Errorf("event span mis-serialized: %+v", spans[0])
	}
	if !spans[0].Instant() {
		t.Error("event span should be instantaneous")
	}
	if spans[1].Attrs["epoch"] != "3" {
		t.Errorf("root attrs lost: %+v", spans[1].Attrs)
	}
}

func TestGroupTracesAndSummaries(t *testing.T) {
	tr := NewTracer(32)
	a := tr.Start(SpanContext{}, "round", "coord")
	tr.Child(a.Context(), "prepare", "").Finish()
	a.Finish()
	b := tr.Start(SpanContext{}, "recovery", "coord")
	b.Finish()
	ids, byTrace := GroupTraces(tr.Spans())
	if len(ids) != 2 {
		t.Fatalf("GroupTraces found %d traces, want 2", len(ids))
	}
	if ids[0] != a.TraceID() || ids[1] != b.TraceID() {
		t.Errorf("traces not ordered by start: %x, %x", ids[0], ids[1])
	}
	if len(byTrace[a.TraceID()]) != 2 {
		t.Errorf("trace a has %d spans, want 2", len(byTrace[a.TraceID()]))
	}
	lines := SummarizeTraces(tr.Spans())
	if len(lines) != 2 || !strings.Contains(lines[0], "round") || !strings.Contains(lines[1], "recovery") {
		t.Errorf("summaries wrong: %q", lines)
	}
}

func TestRenderTimeline(t *testing.T) {
	tr := NewTracer(32)
	root := tr.Start(SpanContext{}, "round", "coord")
	prep := tr.Child(root.Context(), "prepare", "")
	rpc := tr.Child(prep.Context(), "rpc prepare", "")
	tr.Event(rpc.Context(), "chaos.drop", "chaos", "pair", "-1->1")
	rpc.FinishErr(errors.New("connection reset"))
	prep.Finish()
	root.Finish()

	out := RenderTimeline(tr.TraceSpans(root.TraceID()), 48)
	for _, want := range []string{"round", "prepare", "rpc prepare", "chaos.drop", "!", "fault events", "ERR", "pair -1->1"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	if got := RenderTimeline(nil, 40); got != "(empty trace)\n" {
		t.Errorf("empty render = %q", got)
	}
}

// TestSpanAppendJSON pins the hand-rolled sink encoding to encoding/json
// byte for byte: field order, omitempty behavior, sorted attr keys, time
// formatting, and the escaping rules (including HTML escaping, which
// json.Marshal applies by default). If the Span struct grows a field and
// appendJSON is not taught about it, this test is what fails.
func TestSpanAppendJSON(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 30, 45, 123456789, time.UTC)
	spans := []Span{
		{Trace: 1, ID: 2, Name: "round", Start: base, End: base.Add(time.Second)},
		{Trace: 1, ID: 3, Parent: 2, Name: "rpc MsgPrepare", Lane: "node1",
			Start: base, End: base.Add(50 * time.Millisecond),
			Attrs: map[string]string{"peer": "node2", "zz": "last", "aa": "first"}},
		{Trace: 9, ID: 4, Name: `quote " backslash \ html <&>`, Lane: "näöde",
			Start: base.Truncate(time.Second), End: base.Truncate(time.Second),
			Err: "control \t\n chars"},
		{Trace: 5, ID: 6, Name: "with events", Start: base, End: base.Add(time.Minute),
			Events: []Event{
				{Time: base.Add(time.Second), Name: "fault", Attrs: map[string]string{"kind": "drop"}},
				{Time: base.Add(2 * time.Second), Name: "plain"},
			}},
	}
	for _, s := range spans {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.appendJSON(nil); string(got) != string(want) {
			t.Errorf("appendJSON drifted from encoding/json:\n got %s\nwant %s", got, want)
		}
	}
}
