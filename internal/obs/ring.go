package obs

import "sync"

// Ring is a bounded FIFO buffer that evicts oldest-first when full and
// counts what it evicted. It backs everything in the observability layer
// that must not grow without bound on a long run: the tracer's finished-span
// buffer (served by /spans) and the flight recorder's entry log. Safe for
// concurrent use; a nil *Ring drops everything.
type Ring[T any] struct {
	mu      sync.Mutex
	buf     []T
	next    int
	full    bool
	dropped int64
}

// NewRing builds a ring holding at most size elements (size <= 0 picks 1).
func NewRing[T any](size int) *Ring[T] {
	if size <= 0 {
		size = 1
	}
	return &Ring[T]{buf: make([]T, size)}
}

// Push appends v, evicting the oldest element when the ring is full.
func (r *Ring[T]) Push(v T) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.full {
		r.dropped++
	}
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

// Len returns how many elements the ring currently holds.
func (r *Ring[T]) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Cap returns the ring's fixed capacity.
func (r *Ring[T]) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Dropped returns how many elements were evicted to make room.
func (r *Ring[T]) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Filter copies the elements keep reports true for, oldest first, without
// materializing the rest. The predicate sees a pointer into the ring's own
// storage and must not retain it past the call; only matches are copied out.
// This is the per-trace span lookup's fast path: a long run's ring holds
// dozens of rounds of spans, and copying them all to keep a few hundred put
// an O(retained-spans) term in every round.
func (r *Ring[T]) Filter(keep func(*T) bool) []T {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []T
	if r.full {
		for i := r.next; i < len(r.buf); i++ {
			if keep(&r.buf[i]) {
				out = append(out, r.buf[i])
			}
		}
	}
	for i := 0; i < r.next; i++ {
		if keep(&r.buf[i]) {
			out = append(out, r.buf[i])
		}
	}
	return out
}

// Snapshot copies the ring's contents, oldest first.
func (r *Ring[T]) Snapshot() []T {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []T
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}
