package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FlightEntry is one event in the flight recorder's bounded log: a finished
// span, an RPC outcome, a chaos fault, or a free-form note. Entries are
// small and uniform so the ring holds a long pre-failure window cheaply.
type FlightEntry struct {
	Time  time.Time         `json:"time"`
	Kind  string            `json:"kind"`            // "span" | "rpc" | "chaos" | "note" | "alert"
	Name  string            `json:"name"`            // span name, RPC message type, fault kind
	Lane  string            `json:"lane,omitempty"`  // who did the work (coord, nodeN, chaos)
	Peer  string            `json:"peer,omitempty"`  // RPC peer / fault pair
	Trace uint64            `json:"trace,omitempty"` // owning trace id, when known
	DurNS int64             `json:"dur_ns,omitempty"`
	Err   string            `json:"err,omitempty"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// String renders one human-readable line (used by `dvdcctl postmortem`).
func (e FlightEntry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  %-5s %s", e.Time.Format("15:04:05.000000"), e.Kind, e.Name)
	if e.Lane != "" {
		fmt.Fprintf(&b, " [%s]", e.Lane)
	}
	if e.Peer != "" {
		fmt.Fprintf(&b, " peer=%s", e.Peer)
	}
	if e.DurNS > 0 {
		fmt.Fprintf(&b, " %v", time.Duration(e.DurNS).Round(time.Microsecond))
	}
	if e.Trace != 0 {
		fmt.Fprintf(&b, " trace=%016x", e.Trace)
	}
	if len(e.Attrs) > 0 {
		keys := make([]string, 0, len(e.Attrs))
		for k := range e.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%s", k, e.Attrs[k])
		}
	}
	if e.Err != "" {
		fmt.Fprintf(&b, " ERR=%s", e.Err)
	}
	return b.String()
}

// FlightRecorder is a per-process black box: a bounded ring of recent
// telemetry (spans, per-peer RPC outcomes, chaos events, notes) that can
// dump a postmortem bundle — the ring as JSONL, a metrics snapshot, and run
// metadata — when something goes wrong (PartialCommitError, a soak invariant
// violation, SIGQUIT). Inspired by ReHype's recoverable pre-failure state:
// the recorder keeps running at full fidelity so the 2 s before a failure
// are always on disk-able record. All methods tolerate a nil receiver.
type FlightRecorder struct {
	ring  *Ring[FlightEntry]
	dumps atomic.Int64

	mu   sync.Mutex
	dir  string // auto-dump directory ("" = AutoDump disabled)
	reg  *Registry
	meta map[string]interface{}
}

// NewFlightRecorder builds a recorder holding the last size entries
// (<= 0 picks 4096).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = 4096
	}
	return &FlightRecorder{ring: NewRing[FlightEntry](size), meta: map[string]interface{}{}}
}

// SetDumpDir sets where AutoDump writes bundles ("" disables AutoDump;
// explicit Dump calls still work with an explicit directory).
func (r *FlightRecorder) SetDumpDir(dir string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.dir = dir
	r.mu.Unlock()
}

// SetRegistry attaches the metrics registry whose exposition is snapshotted
// into every bundle.
func (r *FlightRecorder) SetRegistry(reg *Registry) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.reg = reg
	r.mu.Unlock()
}

// SetMeta attaches one key of run metadata (layout, seed, geometry) to every
// subsequent bundle's meta.json. Values must be JSON-encodable.
func (r *FlightRecorder) SetMeta(key string, v interface{}) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.meta[key] = v
	r.mu.Unlock()
}

// Record appends one entry, stamping Time if unset.
func (r *FlightRecorder) Record(e FlightEntry) {
	if r == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	r.ring.Push(e)
}

// Note records a free-form annotation ("round 7 start", "node 2 killed").
func (r *FlightRecorder) Note(name string, kv ...string) {
	if r == nil {
		return
	}
	r.Record(FlightEntry{Kind: "note", Name: name, Attrs: kvMap(kv)})
}

// RPC records one per-peer RPC outcome (the transport pool's feed).
func (r *FlightRecorder) RPC(peer, msg string, d time.Duration, trace uint64, err error) {
	if r == nil {
		return
	}
	e := FlightEntry{Kind: "rpc", Name: msg, Peer: peer, DurNS: d.Nanoseconds(), Trace: trace}
	if err != nil {
		e.Err = err.Error()
	}
	r.Record(e)
}

// Span records one finished span; install via Tracer.SetTap:
//
//	tr.SetTap(rec.Span)
func (r *FlightRecorder) Span(s Span) {
	if r == nil {
		return
	}
	e := FlightEntry{
		Time: s.End, Kind: "span", Name: s.Name, Lane: s.Lane,
		Trace: s.Trace, DurNS: s.Duration().Nanoseconds(), Err: s.Err,
	}
	if p := s.Attrs["peer"]; p != "" {
		e.Peer = p
	}
	r.Record(e)
}

// Alert records one SLO alert transition (the health evaluator's feed), so a
// postmortem bundle carries the "why was this dumped" trail alongside the raw
// telemetry.
func (r *FlightRecorder) Alert(rule, state string, kv ...string) {
	if r == nil {
		return
	}
	attrs := kvMap(append([]string{"state", state}, kv...))
	r.Record(FlightEntry{Kind: "alert", Name: rule, Attrs: attrs})
}

// Chaos records one injected fault (the chaos injector's feed).
func (r *FlightRecorder) Chaos(kind, pair, note string) {
	if r == nil {
		return
	}
	r.Record(FlightEntry{Kind: "chaos", Name: kind, Peer: pair, Attrs: kvMap([]string{"note", note})})
}

// Entries snapshots the ring, oldest first.
func (r *FlightRecorder) Entries() []FlightEntry {
	if r == nil {
		return nil
	}
	return r.ring.Snapshot()
}

// Dropped returns how many entries the ring evicted oldest-first.
func (r *FlightRecorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.ring.Dropped()
}

// Dumps returns how many bundles this recorder has written.
func (r *FlightRecorder) Dumps() int64 {
	if r == nil {
		return 0
	}
	return r.dumps.Load()
}

// BundleMeta is a postmortem bundle's meta.json.
type BundleMeta struct {
	Reason    string                 `json:"reason"`
	Time      time.Time              `json:"time"`
	Entries   int                    `json:"entries"`
	Dropped   int64                  `json:"dropped"`
	HostedPID int                    `json:"pid"`
	Meta      map[string]interface{} `json:"meta,omitempty"`
}

// AutoDump writes a bundle into the configured dump directory; a no-op when
// none is set. Errors are returned but safe to ignore on failure paths — the
// recorder must never turn a postmortem into a second failure.
func (r *FlightRecorder) AutoDump(reason string) (string, error) {
	if r == nil {
		return "", nil
	}
	r.mu.Lock()
	dir := r.dir
	r.mu.Unlock()
	if dir == "" {
		return "", nil
	}
	return r.Dump(dir, reason)
}

// Dump writes a postmortem bundle under dir and returns the bundle path:
//
//	<dir>/postmortem-<reason>-<nanotime>/
//	    flight.jsonl     the ring's entries, oldest first, one JSON per line
//	    metrics.prom     Prometheus exposition snapshot (when a registry is set)
//	    goroutine.pprof  full goroutine stacks (text, debug=2) — stuck
//	                     reconcilers show as parked goroutines
//	    heap.pprof       heap profile (binary, `go tool pprof`-able)
//	    meta.json        reason, timestamp, entry/drop counts, run metadata
func (r *FlightRecorder) Dump(dir, reason string) (string, error) {
	if r == nil {
		return "", nil
	}
	slug := strings.Map(func(c rune) rune {
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' {
			return c
		}
		return '-'
	}, reason)
	bundle := filepath.Join(dir, fmt.Sprintf("postmortem-%s-%d", slug, time.Now().UnixNano()))
	if err := os.MkdirAll(bundle, 0o755); err != nil {
		return "", fmt.Errorf("obs: bundle dir: %w", err)
	}
	entries := r.Entries()

	f, err := os.Create(filepath.Join(bundle, "flight.jsonl"))
	if err != nil {
		return "", err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			f.Close()
			return "", err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}

	r.mu.Lock()
	reg := r.reg
	meta := make(map[string]interface{}, len(r.meta))
	for k, v := range r.meta {
		meta[k] = v
	}
	r.mu.Unlock()
	if reg != nil {
		mf, err := os.Create(filepath.Join(bundle, "metrics.prom"))
		if err != nil {
			return "", err
		}
		werr := reg.WritePrometheus(mf)
		if cerr := mf.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return "", werr
		}
	}

	// Profiles are best-effort: a postmortem must never fail because the
	// runtime could not serialize a profile.
	for _, p := range []struct {
		file, profile string
		debug         int
	}{
		{"goroutine.pprof", "goroutine", 2},
		{"heap.pprof", "heap", 0},
	} {
		prof := pprof.Lookup(p.profile)
		if prof == nil {
			continue
		}
		pf, err := os.Create(filepath.Join(bundle, p.file))
		if err != nil {
			continue
		}
		prof.WriteTo(pf, p.debug) //nolint:errcheck
		pf.Close()
	}

	bm := BundleMeta{
		Reason: reason, Time: time.Now(), Entries: len(entries),
		Dropped: r.Dropped(), HostedPID: os.Getpid(), Meta: meta,
	}
	mb, err := json.MarshalIndent(bm, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(bundle, "meta.json"), append(mb, '\n'), 0o644); err != nil {
		return "", err
	}
	r.dumps.Add(1)
	return bundle, nil
}

// Bundle is a postmortem bundle read back from disk.
type Bundle struct {
	Path    string
	Meta    BundleMeta
	Entries []FlightEntry
	Metrics string // raw Prometheus exposition ("" when absent)
}

// ReadBundle loads a bundle directory written by Dump.
func ReadBundle(dir string) (*Bundle, error) {
	b := &Bundle{Path: dir}
	mb, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, fmt.Errorf("obs: read bundle: %w", err)
	}
	if err := json.Unmarshal(mb, &b.Meta); err != nil {
		return nil, fmt.Errorf("obs: bundle meta.json: %w", err)
	}
	f, err := os.Open(filepath.Join(dir, "flight.jsonl"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e FlightEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("obs: flight.jsonl line %d: %w", line, err)
		}
		b.Entries = append(b.Entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if pm, err := os.ReadFile(filepath.Join(dir, "metrics.prom")); err == nil {
		b.Metrics = string(pm)
	}
	return b, nil
}

// FindBundles lists bundle directories under dir, oldest first.
func FindBundles(dir string) ([]string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		// Dump dirs are created lazily on the first dump; a missing dir just
		// means nothing has failed yet.
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, de := range des {
		if de.IsDir() && strings.HasPrefix(de.Name(), "postmortem-") {
			out = append(out, filepath.Join(dir, de.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}
