package adapt

import (
	"fmt"
	"strings"

	"dvdc/internal/obs/collect"
)

// RuleCounts is one rule's scraped decision tally.
type RuleCounts struct {
	Rule        string
	Recommended float64
	Applied     float64
	Failed      float64
	Skips       map[string]float64 // reason -> count (known reasons only)
}

// Skipped sums the rule's skips across reasons.
func (rc RuleCounts) Skipped() float64 {
	var n float64
	for _, v := range rc.Skips {
		n += v
	}
	return n
}

// View is the cross-process picture of the adaptive control loop,
// reconstructed from one /metrics exposition: per-rule decision tallies plus
// the live tuning state the decisions steer. Rule and skip-reason names are a
// closed vocabulary (Rules, SkipReasons), which is what makes a text-format
// scrape renderable without a query language.
type View struct {
	Rules       []RuleCounts
	FailureRate float64 // dvdc_adapt_failure_rate (failures / virtual second)
	Interval    float64 // dvdc_checkpoint_interval_seconds
	ChunkSize   float64 // dvdc_chunk_size_bytes
	PipeWidth   float64 // dvdc_pipeline_width
	Active      bool    // any adapt series present at all
}

// TotalApplied sums applications across rules.
func (v View) TotalApplied() float64 {
	var n float64
	for _, rc := range v.Rules {
		n += rc.Applied
	}
	return n
}

// BuildView reconstructs the advisor's state from a Prometheus text
// exposition (collect.Collector.ScrapeMetrics output or any /metrics body).
func BuildView(exposition string) View {
	v := View{}
	v.FailureRate, _ = collect.MetricValue(exposition, "dvdc_adapt_failure_rate")
	var ok bool
	if v.Interval, ok = collect.MetricValue(exposition, "dvdc_checkpoint_interval_seconds"); ok {
		v.Active = true
	}
	v.ChunkSize, _ = collect.MetricValue(exposition, "dvdc_chunk_size_bytes")
	v.PipeWidth, _ = collect.MetricValue(exposition, "dvdc_pipeline_width")
	for _, rule := range Rules() {
		rc := RuleCounts{Rule: rule, Skips: map[string]float64{}}
		var any bool
		if n, ok := collect.MetricValue(exposition, "dvdc_adapt_recommendations_total", "rule="+rule); ok {
			rc.Recommended, any = n, true
		}
		if n, ok := collect.MetricValue(exposition, "dvdc_adapt_applies_total", "rule="+rule); ok {
			rc.Applied, any = n, true
		}
		if n, ok := collect.MetricValue(exposition, "dvdc_adapt_failures_total", "rule="+rule); ok {
			rc.Failed, any = n, true
		}
		for _, reason := range SkipReasons() {
			if n, ok := collect.MetricValue(exposition, "dvdc_adapt_skips_total", "rule="+rule, "reason="+reason); ok && n > 0 {
				rc.Skips[reason] = n
				any = true
			}
		}
		if any {
			v.Active = true
		}
		v.Rules = append(v.Rules, rc)
	}
	return v
}

// RenderView renders the scraped control-loop state as a terminal panel.
func RenderView(v View) string {
	var b strings.Builder
	if !v.Active {
		b.WriteString("adaptive control loop: no dvdc_adapt_* series exported\n")
		return b.String()
	}
	fmt.Fprintf(&b, "tuning   chunk=%s pipeline=%.0f interval=%.1fs failure-rate=%.4f/s\n",
		byteCount(v.ChunkSize), v.PipeWidth, v.Interval, v.FailureRate)
	fmt.Fprintf(&b, "%-18s %12s %8s %7s %7s  %s\n",
		"rule", "recommended", "applied", "failed", "skipped", "skip reasons")
	for _, rc := range v.Rules {
		var reasons []string
		for _, reason := range SkipReasons() {
			if n := rc.Skips[reason]; n > 0 {
				reasons = append(reasons, fmt.Sprintf("%s=%.0f", reason, n))
			}
		}
		fmt.Fprintf(&b, "%-18s %12.0f %8.0f %7.0f %7.0f  %s\n",
			rc.Rule, rc.Recommended, rc.Applied, rc.Failed, rc.Skipped(), strings.Join(reasons, " "))
	}
	return b.String()
}

// RenderDecisions renders an in-process decision log as the advisor's paper
// trail: inputs -> rule -> action, one line per decision, oldest first.
func RenderDecisions(ds []Decision) string {
	var b strings.Builder
	if len(ds) == 0 {
		b.WriteString("no adaptation decisions\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%5s  %-18s %-8s %-46s %s\n", "round", "rule", "action", "detail", "inputs")
	for _, d := range ds {
		var inputs []string
		for _, k := range sortedKeys(d.Inputs) {
			inputs = append(inputs, k+"="+d.Inputs[k])
		}
		detail := d.Detail
		if d.Action != ActionApplied && d.Reason != "" {
			detail = fmt.Sprintf("%s (%s)", detail, d.Reason)
		}
		fmt.Fprintf(&b, "%5d  %-18s %-8s %-46s %s\n",
			d.Round, d.Rule, d.Action, detail, strings.Join(inputs, " "))
	}
	return b.String()
}

// byteCount renders a byte quantity compactly (4.0KiB, 1.0MiB).
func byteCount(v float64) string {
	switch {
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}
