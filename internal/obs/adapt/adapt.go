// Package adapt closes the telemetry loop: it consumes what the
// observability plane already measures — per-lane self-times and critical
// paths (obs/collect), habitual-outlier flags (collect.OutlierTracker), and
// live failure-rate estimates (analytic.RateEstimator) — and turns them into
// typed, observable recommendations against the running cluster:
//
//   - keeper_rebalance: drain parity keepers off a habitually slow peer, so
//     the slow node stops being the fan-in point of every member's delta
//     stream (the existing recovery/rebalance machinery does the move);
//   - chunk_retune: grow the chunk size / pipeline width when one lane's
//     ship+fold self-time dominates the round — fewer, fatter frames cut the
//     per-frame cost a slow link charges;
//   - interval_retune: re-derive the optimal checkpoint interval from the
//     Section V availability model fed with the observed failure rate.
//
// Every decision — applied, skipped, or failed — is first-class telemetry:
// the dvdc_adapt_* metric family counts it, a decision span nests under the
// round trace, and a flight-recorder note lands in postmortem bundles. The
// advisor never acts while an SLO is firing (health.Evaluator.Firing): a
// control loop that reshapes the cluster during an incident turns alerts
// into moving targets, so recommendations are still computed and recorded
// but their application is skipped with reason "slo-firing".
//
// The advisor deliberately does not import the runtime: actuators arrive as
// Hooks closures, so the package stays a pure telemetry-in/decisions-out
// engine that tests drive with fakes.
package adapt

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"dvdc/internal/analytic"
	"dvdc/internal/obs"
	"dvdc/internal/obs/collect"
)

// Rule names — the advisor's closed vocabulary, shared with the dvdcctl
// renderer (which reconstructs decision tallies from scraped metrics, so the
// set must be enumerable).
const (
	RuleKeeperRebalance = "keeper_rebalance"
	RuleChunkRetune     = "chunk_retune"
	RuleIntervalRetune  = "interval_retune"
)

// Rules lists every rule name, in render order.
func Rules() []string {
	return []string{RuleKeeperRebalance, RuleChunkRetune, RuleIntervalRetune}
}

// Decision actions.
const (
	ActionApplied = "applied"
	ActionSkipped = "skipped"
	ActionFailed  = "failed"
)

// Skip reasons (the label vocabulary of dvdc_adapt_skips_total).
const (
	SkipSLOFiring   = "slo-firing"  // guardrail: an SLO rule is firing
	SkipCooldown    = "cooldown"    // the rule applied too recently
	SkipNoHook      = "no-hook"     // no actuator wired for this rule
	SkipAtLimit     = "at-limit"    // tuning already at its configured cap
	SkipUnplaceable = "unplaceable" // earlier evacuation of this peer failed structurally
)

// SkipReasons lists every skip reason, in render order.
func SkipReasons() []string {
	return []string{SkipSLOFiring, SkipCooldown, SkipNoHook, SkipAtLimit, SkipUnplaceable}
}

// Hooks are the advisor's actuators. All optional: a nil hook records the
// recommendation and skips application with reason "no-hook". Closures keep
// the package decoupled from internal/runtime; the soak harness wires them to
// Coordinator.EvacuateKeepers, Coordinator.Retune, and its own round pacing.
type Hooks struct {
	// EvacuateKeepers drains every parity block off the named peer's node and
	// returns how many blocks moved (0 = the node kept no parity). Lane names
	// ("node3") are the peer vocabulary, matching collect's attribution.
	EvacuateKeepers func(peer string) (moves int, err error)
	// Retune applies a new chunk size and pipeline width cluster-wide.
	Retune func(chunkSize, pipeWidth int) error
	// SetInterval installs a new checkpoint interval in (virtual) seconds.
	SetInterval func(seconds float64) error
}

// Observation is one round's telemetry, handed to Step after the round's
// invariants verified — the cluster is quiesced and every span of the round
// is recorded.
type Observation struct {
	Round int             // 1-based round index
	Ctx   obs.SpanContext // round root span context; decision spans nest here
	Wall  time.Duration   // the round's wall clock

	Attr     *collect.Attribution // critical-path attribution (may be nil)
	Outliers []string             // peers currently flagged as habitual outliers
	Evidence map[string]string    // extra rendered evidence (p99s, medians) merged into decision inputs

	Failures int     // failures observed this round (kills + mid-commit deaths)
	Elapsed  float64 // (virtual) seconds of exposure the round covered

	Firing []string // SLO rules currently firing (health.Evaluator.Firing)
}

// Decision is one advisor verdict: the rule that fired, the evidence it saw,
// and what happened to the recommendation.
type Decision struct {
	Round  int
	Rule   string
	Action string            // applied | skipped | failed
	Reason string            // skip/failure reason ("" when applied)
	Detail string            // human summary of the action
	Inputs map[string]string // the evidence the rule fired on
}

// Config parameterizes an Advisor. Zero values select the documented
// defaults; Tracer/Registry/Recorder may each be nil (the corresponding
// telemetry is simply not emitted).
type Config struct {
	Tracer   *obs.Tracer
	Registry *obs.Registry
	Recorder *obs.FlightRecorder
	Hooks    Hooks

	// Current tuning state, the base the rules mutate from.
	ChunkSize       int     // effective chunk payload bytes (> 0: the chunked path is active)
	PipelineWidth   int     // in-flight chunk batches per (stream, peer)
	IntervalSeconds float64 // checkpoint interval on the virtual clock

	CooldownRounds int     // rounds a rule rests after applying (default 2)
	StragglerFrac  float64 // straggler path-share of wall that triggers chunk_retune (default 0.55)
	MaxChunkSize   int     // chunk_retune growth cap (default 1 MiB)
	MaxPipeWidth   int     // pipeline width growth cap (default 16)

	RateHalfLife   float64 // failure-rate estimator half-life, virtual seconds (default analytic.DefaultRateHalfLife)
	MinRateSeconds float64 // observed seconds before interval_retune engages (default 30)
	MissionTime    float64 // availability-model mission time T (default 86400)
	RepairSeconds  float64 // availability-model repair time (default 30)
	OverheadSec    float64 // per-checkpoint overhead Tov fed to the model (default 1)
	IntervalLo     float64 // optimal-interval search bounds (default [1, 3600])
	IntervalHi     float64
	IntervalTol    float64 // relative interval change worth acting on (default 0.25)
}

func (c Config) withDefaults() Config {
	if c.CooldownRounds <= 0 {
		c.CooldownRounds = 2
	}
	if c.StragglerFrac <= 0 {
		c.StragglerFrac = 0.55
	}
	if c.MaxChunkSize <= 0 {
		c.MaxChunkSize = 1 << 20
	}
	if c.MaxPipeWidth <= 0 {
		c.MaxPipeWidth = 16
	}
	if c.RateHalfLife <= 0 {
		c.RateHalfLife = analytic.DefaultRateHalfLife
	}
	if c.MinRateSeconds <= 0 {
		c.MinRateSeconds = 30
	}
	if c.MissionTime <= 0 {
		c.MissionTime = 24 * 3600
	}
	if c.RepairSeconds <= 0 {
		c.RepairSeconds = 30
	}
	if c.OverheadSec <= 0 {
		c.OverheadSec = 1
	}
	if c.IntervalLo <= 0 {
		c.IntervalLo = 1
	}
	if c.IntervalHi <= c.IntervalLo {
		c.IntervalHi = 3600
	}
	if c.IntervalTol <= 0 {
		c.IntervalTol = 0.25
	}
	return c
}

// Advisor is the adaptive control loop's brain. Feed it one Observation per
// round (Step); it returns the round's decisions after recording each as
// metrics, a decision span, and a flight-recorder note. Safe for concurrent
// use, though the intended cadence is one Step per round.
type Advisor struct {
	mu        sync.Mutex
	cfg       Config
	est       *analytic.RateEstimator
	lastApply map[string]int  // rule -> round of last application
	evacuated map[string]bool // peers whose keepers were already drained
	failed    map[string]bool // peers whose evacuation failed structurally
	chunk     int
	width     int
	interval  float64
	decisions []Decision
}

// New builds an Advisor and mounts its live gauges on the registry:
// dvdc_adapt_failure_rate (the decayed failures-per-virtual-second estimate)
// and dvdc_checkpoint_interval_seconds (the interval the advisor currently
// believes in — also the satellite tuning gauge for static runs, where it
// simply never moves).
func New(cfg Config) *Advisor {
	cfg = cfg.withDefaults()
	a := &Advisor{
		cfg:       cfg,
		est:       analytic.NewRateEstimator(cfg.RateHalfLife),
		lastApply: map[string]int{},
		evacuated: map[string]bool{},
		failed:    map[string]bool{},
		chunk:     cfg.ChunkSize,
		width:     cfg.PipelineWidth,
		interval:  cfg.IntervalSeconds,
	}
	reg := cfg.Registry
	reg.GaugeFunc("dvdc_adapt_failure_rate", func() float64 { return a.est.Rate() })
	reg.GaugeFunc("dvdc_checkpoint_interval_seconds", func() float64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		return a.interval
	})
	return a
}

// FailureRate exposes the live failure-rate estimate (failures per virtual
// second).
func (a *Advisor) FailureRate() float64 { return a.est.Rate() }

// Interval returns the checkpoint interval the advisor currently believes in.
func (a *Advisor) Interval() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.interval
}

// Tuning returns the advisor's current view of the data-path tuning.
func (a *Advisor) Tuning() (chunkSize, pipeWidth int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.chunk, a.width
}

// Decisions returns every decision taken so far, oldest first.
func (a *Advisor) Decisions() []Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Decision(nil), a.decisions...)
}

// Step consumes one round's telemetry and runs every rule. Each emitted
// Decision has already been counted (dvdc_adapt_*), recorded (flight note),
// and traced (a decision span under o.Ctx) when Step returns.
func (a *Advisor) Step(o Observation) []Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	if o.Elapsed > 0 {
		a.est.Observe(o.Failures, o.Elapsed) //nolint:errcheck // guarded: elapsed > 0, failures >= 0 by construction
	}
	span := a.cfg.Tracer.Child(o.Ctx, "adapt", "adapt")
	sctx := obs.SpanContext{}
	if span != nil {
		sctx = span.Context()
	}
	var out []Decision
	out = append(out, a.keeperRule(o)...)
	if d := a.chunkRule(o); d != nil {
		out = append(out, *d)
	}
	if d := a.intervalRule(o); d != nil {
		out = append(out, *d)
	}
	for i := range out {
		a.record(sctx, out[i])
	}
	a.decisions = append(a.decisions, out...)
	if span != nil {
		span.SetAttr("decisions", strconv.Itoa(len(out)))
		span.Finish()
	}
	return out
}

// gate returns the reason an application must be skipped ("" = clear to act).
// Precedence: a missing actuator beats the guardrail beats the cooldown, so
// the skip label always names the first unfixable obstacle.
func (a *Advisor) gate(rule string, o Observation, hookNil bool) string {
	if hookNil {
		return SkipNoHook
	}
	if len(o.Firing) > 0 {
		return SkipSLOFiring
	}
	if last, ok := a.lastApply[rule]; ok && o.Round-last <= a.cfg.CooldownRounds {
		return SkipCooldown
	}
	return ""
}

// keeperRule recommends draining parity keepers off every habitually slow
// peer the outlier tracker flags. One decision per un-evacuated outlier.
func (a *Advisor) keeperRule(o Observation) []Decision {
	var out []Decision
	for _, peer := range o.Outliers {
		if a.evacuated[peer] {
			continue
		}
		d := Decision{
			Round:  o.Round,
			Rule:   RuleKeeperRebalance,
			Detail: "evacuate parity keepers off " + peer,
			Inputs: map[string]string{"peer": peer},
		}
		for k, v := range o.Evidence {
			d.Inputs[k] = v
		}
		if o.Attr != nil && o.Attr.Straggler != "" {
			d.Inputs["straggler"] = o.Attr.Straggler
		}
		switch {
		case a.failed[peer]:
			d.Action, d.Reason = ActionSkipped, SkipUnplaceable
		default:
			if reason := a.gate(RuleKeeperRebalance, o, a.cfg.Hooks.EvacuateKeepers == nil); reason != "" {
				d.Action, d.Reason = ActionSkipped, reason
				break
			}
			moves, err := a.cfg.Hooks.EvacuateKeepers(peer)
			if err != nil {
				d.Action, d.Reason = ActionFailed, err.Error()
				a.failed[peer] = true
				break
			}
			d.Action = ActionApplied
			a.evacuated[peer] = true
			if moves == 0 {
				d.Detail = peer + " keeps no parity; nothing to drain"
			} else {
				d.Detail = fmt.Sprintf("drained %d parity block(s) off %s", moves, peer)
			}
		}
		out = append(out, d)
	}
	return out
}

// chunkRule recommends fatter chunks and a wider pipeline when one lane's
// self-time dominates the round's critical path: per-frame costs (a slow
// link's per-frame delay, framing, scheduler ping-pong) scale with frame
// count, so halving the frames roughly halves what a slow edge can charge.
// Only meaningful on the chunked data path (ChunkSize > 0).
func (a *Advisor) chunkRule(o Observation) *Decision {
	if a.chunk <= 0 || o.Attr == nil || o.Wall <= 0 || o.Attr.StragglerDur <= 0 {
		return nil
	}
	frac := float64(o.Attr.StragglerDur) / float64(o.Wall)
	if frac < a.cfg.StragglerFrac {
		return nil
	}
	newChunk := min(a.chunk*2, a.cfg.MaxChunkSize)
	newWidth := min(max(a.width, 1)*2, a.cfg.MaxPipeWidth)
	d := &Decision{
		Round: o.Round,
		Rule:  RuleChunkRetune,
		Detail: fmt.Sprintf("retune chunk %d->%d bytes, pipeline %d->%d",
			a.chunk, newChunk, a.width, newWidth),
		Inputs: map[string]string{
			"straggler":      o.Attr.Straggler,
			"straggler_span": o.Attr.StragglerSpan,
			"path_share":     fmt.Sprintf("%.0f%%", frac*100),
		},
	}
	if newChunk == a.chunk && newWidth == a.width {
		d.Action, d.Reason = ActionSkipped, SkipAtLimit
		return d
	}
	if reason := a.gate(RuleChunkRetune, o, a.cfg.Hooks.Retune == nil); reason != "" {
		d.Action, d.Reason = ActionSkipped, reason
		return d
	}
	if err := a.cfg.Hooks.Retune(newChunk, newWidth); err != nil {
		d.Action, d.Reason = ActionFailed, err.Error()
		return d
	}
	d.Action = ActionApplied
	a.chunk, a.width = newChunk, newWidth
	return d
}

// intervalRule re-derives the optimal checkpoint interval from the Section V
// availability model fed with the live failure-rate estimate, and recommends
// a change when it moves beyond the tolerance band. No failures observed yet
// means no evidence — the rule stays quiet rather than "optimizing" on a
// zero rate.
func (a *Advisor) intervalRule(o Observation) *Decision {
	rate := a.est.Rate()
	if rate <= 0 || a.est.ObservedSeconds() < a.cfg.MinRateSeconds || a.interval <= 0 {
		return nil
	}
	opt, err := analytic.OptimalInterval(
		analytic.Model{Lambda: rate, T: a.cfg.MissionTime, Repair: a.cfg.RepairSeconds},
		analytic.ConstantOverhead{Tov: a.cfg.OverheadSec, Label: "observed"},
		a.cfg.IntervalLo, a.cfg.IntervalHi)
	if err != nil {
		return nil
	}
	rel := (opt.Interval - a.interval) / a.interval
	if rel < 0 {
		rel = -rel
	}
	if rel <= a.cfg.IntervalTol {
		return nil
	}
	d := &Decision{
		Round: o.Round,
		Rule:  RuleIntervalRetune,
		Detail: fmt.Sprintf("retune checkpoint interval %.1fs -> %.1fs",
			a.interval, opt.Interval),
		Inputs: map[string]string{
			"failure_rate": fmt.Sprintf("%.4f/s", rate),
			"mtbf":         fmt.Sprintf("%.0fs", a.est.MTBF()),
			"optimal":      fmt.Sprintf("%.1fs", opt.Interval),
		},
	}
	if reason := a.gate(RuleIntervalRetune, o, a.cfg.Hooks.SetInterval == nil); reason != "" {
		d.Action, d.Reason = ActionSkipped, reason
		return d
	}
	if err := a.cfg.Hooks.SetInterval(opt.Interval); err != nil {
		d.Action, d.Reason = ActionFailed, err.Error()
		return d
	}
	d.Action = ActionApplied
	a.interval = opt.Interval
	return d
}

// record lands one decision in every telemetry surface: the dvdc_adapt_*
// counters, a decision span under the round trace, and a flight note. Caller
// holds a.mu.
func (a *Advisor) record(sctx obs.SpanContext, d Decision) {
	reg := a.cfg.Registry
	reg.Counter("dvdc_adapt_recommendations_total", "rule", d.Rule).Inc()
	switch d.Action {
	case ActionApplied:
		reg.Counter("dvdc_adapt_applies_total", "rule", d.Rule).Inc()
		a.lastApply[d.Rule] = d.Round
	case ActionSkipped:
		reg.Counter("dvdc_adapt_skips_total", "rule", d.Rule, "reason", d.Reason).Inc()
	case ActionFailed:
		reg.Counter("dvdc_adapt_failures_total", "rule", d.Rule).Inc()
	}
	if sp := a.cfg.Tracer.Child(sctx, "adapt "+d.Rule, "adapt"); sp != nil {
		sp.SetAttr("action", d.Action)
		if d.Reason != "" {
			sp.SetAttr("reason", d.Reason)
		}
		sp.SetAttr("detail", d.Detail)
		for _, k := range sortedKeys(d.Inputs) {
			sp.SetAttr(k, d.Inputs[k])
		}
		sp.Finish()
	}
	a.cfg.Recorder.Note("adapt",
		"round", strconv.Itoa(d.Round),
		"rule", d.Rule,
		"action", d.Action,
		"detail", d.Detail,
		"reason", d.Reason)
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
