package adapt

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"dvdc/internal/obs"
	"dvdc/internal/obs/collect"
)

// obsWith builds a minimal observation: a dominant straggler lane when frac
// > 0, outliers as given.
func obsWith(round int, frac float64, outliers ...string) Observation {
	o := Observation{Round: round, Wall: 100 * time.Millisecond, Outliers: outliers, Elapsed: 10}
	if frac > 0 {
		o.Attr = &collect.Attribution{
			Straggler:     "node1",
			StragglerSpan: "rpc delta-chunk",
			StragglerDur:  time.Duration(frac * float64(o.Wall)),
		}
	}
	return o
}

func TestKeeperRuleEvacuatesOutlierOnce(t *testing.T) {
	var calls []string
	a := New(Config{
		ChunkSize: 4096, PipelineWidth: 4, IntervalSeconds: 10,
		Hooks: Hooks{EvacuateKeepers: func(peer string) (int, error) {
			calls = append(calls, peer)
			return 2, nil
		}},
	})
	ds := a.Step(obsWith(1, 0, "node3"))
	if len(ds) != 1 || ds[0].Rule != RuleKeeperRebalance || ds[0].Action != ActionApplied {
		t.Fatalf("decisions = %+v, want one applied keeper_rebalance", ds)
	}
	if !strings.Contains(ds[0].Detail, "2 parity block(s)") {
		t.Errorf("detail %q does not name the drained blocks", ds[0].Detail)
	}
	// The same outlier never triggers a second evacuation.
	if ds := a.Step(obsWith(2, 0, "node3")); len(ds) != 0 {
		t.Fatalf("re-flagged outlier produced %+v, want nothing", ds)
	}
	if len(calls) != 1 || calls[0] != "node3" {
		t.Fatalf("hook calls = %v, want exactly [node3]", calls)
	}
}

func TestKeeperRuleStructuralFailureNotRetried(t *testing.T) {
	calls := 0
	a := New(Config{
		ChunkSize: 4096, IntervalSeconds: 10,
		Hooks: Hooks{EvacuateKeepers: func(string) (int, error) {
			calls++
			return 0, fmt.Errorf("no orthogonal target")
		}},
	})
	ds := a.Step(obsWith(1, 0, "node2"))
	if len(ds) != 1 || ds[0].Action != ActionFailed {
		t.Fatalf("decisions = %+v, want one failed", ds)
	}
	ds = a.Step(obsWith(2, 0, "node2"))
	if len(ds) != 1 || ds[0].Action != ActionSkipped || ds[0].Reason != SkipUnplaceable {
		t.Fatalf("decisions = %+v, want skip reason %q", ds, SkipUnplaceable)
	}
	if calls != 1 {
		t.Fatalf("hook called %d times, want 1 (structural failures are terminal)", calls)
	}
}

func TestChunkRuleDoublesTowardCapAndCoolsDown(t *testing.T) {
	var got [][2]int
	a := New(Config{
		ChunkSize: 4096, PipelineWidth: 4, IntervalSeconds: 10,
		MaxChunkSize: 16384, MaxPipeWidth: 8, CooldownRounds: 2,
		Hooks: Hooks{Retune: func(cs, pw int) error {
			got = append(got, [2]int{cs, pw})
			return nil
		}},
	})
	// Round 1: dominant straggler -> apply 8192/8.
	ds := a.Step(obsWith(1, 0.8))
	if len(ds) != 1 || ds[0].Action != ActionApplied {
		t.Fatalf("round 1 decisions = %+v", ds)
	}
	// Rounds 2-3: still slow, but the rule is cooling down.
	for r := 2; r <= 3; r++ {
		ds = a.Step(obsWith(r, 0.8))
		if len(ds) != 1 || ds[0].Reason != SkipCooldown {
			t.Fatalf("round %d decisions = %+v, want cooldown skip", r, ds)
		}
	}
	// Round 4: apply 16384/8 (width already at cap).
	if ds = a.Step(obsWith(4, 0.8)); len(ds) != 1 || ds[0].Action != ActionApplied {
		t.Fatalf("round 4 decisions = %+v", ds)
	}
	// Round 7 (cooldown over): both at cap -> at-limit skip, hook not called.
	if ds = a.Step(obsWith(7, 0.8)); len(ds) != 1 || ds[0].Reason != SkipAtLimit {
		t.Fatalf("round 7 decisions = %+v, want at-limit skip", ds)
	}
	want := [][2]int{{8192, 8}, {16384, 8}}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("retune calls = %v, want %v", got, want)
	}
	// A calm round recommends nothing.
	if ds = a.Step(obsWith(10, 0.2)); len(ds) != 0 {
		t.Fatalf("calm round produced %+v", ds)
	}
}

func TestGuardrailPausesApplicationsWhileSLOFiring(t *testing.T) {
	hookCalled := false
	a := New(Config{
		ChunkSize: 4096, PipelineWidth: 4, IntervalSeconds: 10,
		Hooks: Hooks{
			Retune:          func(int, int) error { hookCalled = true; return nil },
			EvacuateKeepers: func(string) (int, error) { hookCalled = true; return 1, nil },
		},
	})
	o := obsWith(1, 0.9, "node1")
	o.Firing = []string{"round_time_slo"}
	ds := a.Step(o)
	if len(ds) != 2 {
		t.Fatalf("decisions = %+v, want keeper + chunk recommendations", ds)
	}
	for _, d := range ds {
		if d.Action != ActionSkipped || d.Reason != SkipSLOFiring {
			t.Fatalf("decision %+v, want skipped/%s", d, SkipSLOFiring)
		}
	}
	if hookCalled {
		t.Fatal("an actuator ran while the SLO was firing")
	}
	// Once the alert resolves the same evidence is applied.
	ds = a.Step(obsWith(2, 0.9, "node1"))
	if len(ds) != 2 || !hookCalled {
		t.Fatalf("post-resolve decisions = %+v (hookCalled=%v)", ds, hookCalled)
	}
}

func TestIntervalRuleFollowsFailureRate(t *testing.T) {
	var set []float64
	a := New(Config{
		ChunkSize: 4096, IntervalSeconds: 3600,
		MinRateSeconds: 20, RateHalfLife: 1e9, OverheadSec: 2,
		Hooks: Hooks{SetInterval: func(s float64) error { set = append(set, s); return nil }},
	})
	// No failures: the rule stays quiet.
	if ds := a.Step(Observation{Round: 1, Elapsed: 100}); len(ds) != 0 {
		t.Fatalf("zero-rate round produced %+v", ds)
	}
	// A failure regime: the model must pull the interval down hard.
	o := Observation{Round: 2, Failures: 5, Elapsed: 100}
	ds := a.Step(o)
	if len(ds) != 1 || ds[0].Rule != RuleIntervalRetune || ds[0].Action != ActionApplied {
		t.Fatalf("decisions = %+v, want applied interval_retune", ds)
	}
	if len(set) != 1 || set[0] >= 3600 {
		t.Fatalf("SetInterval calls = %v, want one value well below 3600", set)
	}
	if a.Interval() != set[0] {
		t.Fatalf("advisor interval %v != applied %v", a.Interval(), set[0])
	}
}

func TestDecisionTelemetryAndRendering(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(1 << 10)
	rec := obs.NewFlightRecorder(128)
	a := New(Config{
		Tracer: tr, Registry: reg, Recorder: rec,
		ChunkSize: 4096, PipelineWidth: 4, IntervalSeconds: 10,
		Hooks: Hooks{EvacuateKeepers: func(string) (int, error) { return 1, nil }},
	})
	root := tr.Start(obs.SpanContext{}, "round", "coord")
	o := obsWith(1, 0.9, "node2")
	o.Ctx = root.Context()
	ds := a.Step(o)
	root.Finish()
	if len(ds) != 2 {
		t.Fatalf("decisions = %+v", ds)
	}

	// Metrics: recommendations for both rules, one apply, one no-hook skip.
	if v, _ := reg.Value("dvdc_adapt_recommendations_total", "rule", RuleKeeperRebalance); v != 1 {
		t.Errorf("keeper recommendations = %v, want 1", v)
	}
	if v, _ := reg.Value("dvdc_adapt_applies_total", "rule", RuleKeeperRebalance); v != 1 {
		t.Errorf("keeper applies = %v, want 1", v)
	}
	if v, _ := reg.Value("dvdc_adapt_skips_total", "rule", RuleChunkRetune, "reason", SkipNoHook); v != 1 {
		t.Errorf("chunk no-hook skips = %v, want 1", v)
	}

	// Spans: decision spans nest under the round trace.
	spans := tr.TraceSpans(root.TraceID())
	var adaptSpans int
	for _, s := range spans {
		if strings.HasPrefix(s.Name, "adapt") {
			adaptSpans++
		}
	}
	if adaptSpans != 3 { // "adapt" + one per decision
		t.Errorf("adapt spans in round trace = %d, want 3", adaptSpans)
	}

	// Flight notes: one per decision.
	var notes int
	for _, e := range rec.Entries() {
		if e.Kind == "note" && e.Name == "adapt" {
			notes++
		}
	}
	if notes != 2 {
		t.Errorf("flight notes = %d, want 2", notes)
	}

	// Decision log rendering: inputs -> rule -> action.
	out := RenderDecisions(a.Decisions())
	for _, want := range []string{"keeper_rebalance", "applied", "peer=node2", "chunk_retune", "no-hook"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderDecisions output missing %q:\n%s", want, out)
		}
	}

	// Scraped view rendering round-trips through the text exposition.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	v := BuildView(sb.String())
	if !v.Active {
		t.Fatal("BuildView saw no adapt series")
	}
	if v.TotalApplied() != 1 {
		t.Errorf("view applied = %v, want 1", v.TotalApplied())
	}
	if v.Interval != 10 {
		t.Errorf("view interval = %v, want 10", v.Interval)
	}
	panel := RenderView(v)
	for _, want := range []string{"keeper_rebalance", "interval=10.0s", "no-hook=1"} {
		if !strings.Contains(panel, want) {
			t.Errorf("RenderView output missing %q:\n%s", want, panel)
		}
	}
}
