// Package migrate implements pre-copy live migration, the mechanism the
// paper leans on twice: as background (Clark et al.'s iterative dirty-page
// transfer with millisecond downtime) and as the transport DVDC borrows from
// Remus for shipping incremental checkpoints (Sec. IV-C).
//
// Two layers are provided. SimulatePrecopy is the flow-level model: given an
// image size, a dirty-rate model, and a link, it computes the round-by-round
// transfer schedule, total migration time, and stop-and-copy downtime.
// Migration is the byte-real engine: it actually moves a vm.Machine's pages
// between hosts round by round, with an optional page-hash index at the
// destination that skips pages already present — the paper's future-work
// proposal for accelerating migration between similar VMs.
package migrate

import (
	"fmt"
	"math"

	"dvdc/internal/netsim"
	"dvdc/internal/vm"
)

// PrecopyConfig parameterizes the flow-level pre-copy model.
type PrecopyConfig struct {
	Link          netsim.Link
	StopThreshold float64 // switch to stop-and-copy when a round's bytes fall below this
	MaxRounds     int     // hard cap on iterative rounds (Clark's implementation uses ~30)
	DowntimeExtra float64 // fixed downtime cost beyond the final copy (activation, ARP)
}

// DefaultPrecopyConfig mirrors Clark-era settings on GigE.
func DefaultPrecopyConfig() PrecopyConfig {
	return PrecopyConfig{
		Link:          netsim.GigE,
		StopThreshold: 1 << 20, // 1 MiB
		MaxRounds:     30,
		DowntimeExtra: 3e-3,
	}
}

// Validate checks the config.
func (c PrecopyConfig) Validate() error {
	if err := c.Link.Validate(); err != nil {
		return err
	}
	if c.StopThreshold < 0 {
		return fmt.Errorf("migrate: negative stop threshold %v", c.StopThreshold)
	}
	if c.MaxRounds < 1 {
		return fmt.Errorf("migrate: need >= 1 round, got %d", c.MaxRounds)
	}
	if c.DowntimeExtra < 0 {
		return fmt.Errorf("migrate: negative downtime extra %v", c.DowntimeExtra)
	}
	return nil
}

// PrecopyResult reports the outcome of a simulated migration.
type PrecopyResult struct {
	Rounds     int     // iterative (pre-copy) rounds before stop-and-copy
	TotalSec   float64 // end-to-end migration time including downtime
	Downtime   float64 // stop-and-copy pause
	TotalBytes float64 // bytes moved across all rounds
}

// SimulatePrecopy runs the flow-level pre-copy schedule: round 0 ships the
// whole image; each subsequent round ships the pages dirtied while the
// previous round was in flight; when a round's payload drops below the stop
// threshold (or rounds run out) the VM pauses and the remainder moves in the
// stop-and-copy phase, whose duration is the downtime.
func SimulatePrecopy(imageBytes float64, dirty vm.DirtyModel, cfg PrecopyConfig) (PrecopyResult, error) {
	if imageBytes <= 0 || math.IsNaN(imageBytes) {
		return PrecopyResult{}, fmt.Errorf("migrate: invalid image size %v", imageBytes)
	}
	if dirty == nil {
		return PrecopyResult{}, fmt.Errorf("migrate: nil dirty model")
	}
	if err := cfg.Validate(); err != nil {
		return PrecopyResult{}, err
	}
	var res PrecopyResult
	send := imageBytes
	for {
		roundTime := cfg.Link.TransferTime(send)
		res.TotalSec += roundTime
		res.TotalBytes += send
		res.Rounds++
		next := math.Min(dirty.DirtyBytes(roundTime), imageBytes)
		if next <= cfg.StopThreshold || res.Rounds >= cfg.MaxRounds {
			res.Downtime = cfg.Link.TransferTime(next) + cfg.DowntimeExtra
			res.TotalSec += res.Downtime
			res.TotalBytes += next
			return res, nil
		}
		send = next
	}
}
