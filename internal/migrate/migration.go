package migrate

import (
	"fmt"

	"dvdc/internal/obs"
	"dvdc/internal/vm"
)

// HashIndex is a destination-side index of page hashes already present (from
// template images or previously received VMs). When migration finds a source
// page whose hash the destination holds, only the hash travels — the paper's
// future-work idea of "using page hashes to speed up live migration when
// similar VMs reside at the host destination".
type HashIndex struct {
	pages map[uint64][]byte
}

// NewHashIndex builds an empty index.
func NewHashIndex() *HashIndex { return &HashIndex{pages: make(map[uint64][]byte)} }

// AddMachine indexes every page of m.
func (h *HashIndex) AddMachine(m *vm.Machine) {
	for i := 0; i < m.NumPages(); i++ {
		hash := m.PageHash(i)
		if _, ok := h.pages[hash]; !ok {
			h.pages[hash] = append([]byte(nil), m.Page(i)...)
		}
	}
}

// Lookup returns the indexed content for a hash.
func (h *HashIndex) Lookup(hash uint64) ([]byte, bool) {
	p, ok := h.pages[hash]
	return p, ok
}

// Len returns the number of distinct pages indexed.
func (h *HashIndex) Len() int { return len(h.pages) }

// Stats accounts for a byte-real migration.
type Stats struct {
	Rounds       int
	PagesSent    int
	BytesSent    int64 // page payloads that actually crossed the wire
	PagesDeduped int
	BytesDeduped int64 // payloads satisfied from the destination hash index
	FinalPages   int   // pages moved during stop-and-copy
}

// Migration moves a source Machine's memory to a destination host round by
// round. The caller interleaves guest execution between CopyRound calls
// (mutating src), exactly like a real pre-copy migration racing the guest's
// dirty rate; Finalize performs the stop-and-copy phase, after which the
// destination machine is byte-identical to the source.
type Migration struct {
	src   *vm.Machine
	dst   *vm.Machine
	index *HashIndex // optional
	stats Stats
	state int // 0 = before first round, 1 = iterating, 2 = finalized

	tracer   *obs.Tracer   // optional: spans per copy round + stop-and-copy
	registry *obs.Registry // optional: page/byte counters + round-size histogram
	root     *obs.Active   // "migrate <vm>" span, opened on the first round
}

// NewMigration prepares a migration of src onto a fresh destination machine
// with identical geometry and the same identity (a live-migrated VM remains
// the same VM). index may be nil to disable hash dedup.
func NewMigration(src *vm.Machine, index *HashIndex) (*Migration, error) {
	if src == nil {
		return nil, fmt.Errorf("migrate: nil source")
	}
	dst, err := vm.NewMachine(src.ID(), src.NumPages(), src.PageSize())
	if err != nil {
		return nil, err
	}
	return &Migration{src: src, dst: dst, index: index}, nil
}

// SetObserver attaches an optional tracer and registry. The tracer gets one
// root span per migration with a child per pre-copy round and one for the
// stop-and-copy phase; the registry gets page counters and a round-size
// histogram. Call before the first CopyRound.
func (g *Migration) SetObserver(tr *obs.Tracer, reg *obs.Registry) {
	g.tracer, g.registry = tr, reg
}

// span opens a child of the migration's root span (opening the root first if
// this is the migration's first traced phase). Nil-safe throughout.
func (g *Migration) span(name string) *obs.Active {
	if g.tracer == nil {
		return nil
	}
	if g.root == nil {
		g.root = g.tracer.Start(obs.SpanContext{}, "migrate "+g.src.ID(), "migrate")
	}
	return g.tracer.Child(g.root.Context(), name, "migrate")
}

// Dst exposes the destination machine (complete only after Finalize).
func (g *Migration) Dst() *vm.Machine { return g.dst }

// Stats returns the accounting so far.
func (g *Migration) Stats() Stats { return g.stats }

// transfer moves one source page to the destination, consulting the hash
// index first.
func (g *Migration) transfer(i int) error {
	if g.index != nil {
		h := g.src.PageHash(i)
		if content, ok := g.index.Lookup(h); ok {
			g.stats.PagesDeduped++
			g.stats.BytesDeduped += int64(g.src.PageSize())
			return g.dst.WritePage(i, content)
		}
	}
	g.stats.PagesSent++
	g.stats.BytesSent += int64(g.src.PageSize())
	return g.dst.WritePage(i, g.src.Page(i))
}

// CopyRound performs one pre-copy round: the first round ships every page,
// later rounds ship the pages dirtied since the previous round. It returns
// how many pages were shipped this round, which the caller uses to decide
// when to stop iterating and Finalize.
func (g *Migration) CopyRound() (sent int, err error) {
	if g.state == 2 {
		return 0, fmt.Errorf("migrate: migration already finalized")
	}
	span := g.span(fmt.Sprintf("round %d", g.stats.Rounds+1))
	defer func() { span.FinishErr(err) }()
	before := g.stats
	var pages []int
	if g.state == 0 {
		pages = make([]int, g.src.NumPages())
		for i := range pages {
			pages[i] = i
		}
		g.state = 1
	} else {
		pages = g.src.DirtyPages()
	}
	g.src.BeginEpoch() // writes from here on belong to the next round
	for _, i := range pages {
		if err := g.transfer(i); err != nil {
			return 0, err
		}
	}
	g.stats.Rounds++
	span.SetAttr("pages", fmt.Sprint(len(pages)))
	g.observeRound(before)
	return len(pages), nil
}

// observeRound folds the stats delta since before into the registry.
func (g *Migration) observeRound(before Stats) {
	if g.registry == nil {
		return
	}
	g.registry.Counter("dvdc_migrate_pages_sent_total").Add(int64(g.stats.PagesSent - before.PagesSent))
	g.registry.Counter("dvdc_migrate_pages_deduped_total").Add(int64(g.stats.PagesDeduped - before.PagesDeduped))
	g.registry.Histogram("dvdc_migrate_round_bytes", obs.ByteBuckets()).
		Observe(float64(g.stats.BytesSent - before.BytesSent))
}

// Finalize is the stop-and-copy phase: the caller guarantees the guest is
// paused (no further src writes); the remaining dirty pages move and the
// destination becomes identical to the source.
func (g *Migration) Finalize() (_ Stats, err error) {
	if g.state == 0 {
		if _, err := g.CopyRound(); err != nil {
			return Stats{}, err
		}
	}
	if g.state == 2 {
		return g.stats, fmt.Errorf("migrate: migration already finalized")
	}
	span := g.span("stop-and-copy")
	defer func() {
		span.FinishErr(err)
		if g.root != nil {
			g.root.FinishErr(err)
		}
	}()
	before := g.stats
	remaining := g.src.DirtyPages()
	for _, i := range remaining {
		if err := g.transfer(i); err != nil {
			return g.stats, err
		}
	}
	g.stats.FinalPages = len(remaining)
	g.src.BeginEpoch()
	g.state = 2
	span.SetAttr("pages", fmt.Sprint(len(remaining)))
	g.observeRound(before)
	if !g.src.Equal(g.dst) {
		return g.stats, fmt.Errorf("migrate: destination diverged from source after stop-and-copy")
	}
	return g.stats, nil
}
