package migrate

import (
	"math"
	"testing"
	"testing/quick"

	"dvdc/internal/netsim"
	"dvdc/internal/vm"
)

func TestPrecopyConfigValidate(t *testing.T) {
	if err := DefaultPrecopyConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := DefaultPrecopyConfig()
	bad.StopThreshold = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative threshold should fail")
	}
	bad = DefaultPrecopyConfig()
	bad.MaxRounds = 0
	if err := bad.Validate(); err == nil {
		t.Error("0 rounds should fail")
	}
	bad = DefaultPrecopyConfig()
	bad.DowntimeExtra = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative downtime extra should fail")
	}
}

func TestSimulatePrecopyValidation(t *testing.T) {
	cfg := DefaultPrecopyConfig()
	if _, err := SimulatePrecopy(0, vm.LinearDirty{}, cfg); err == nil {
		t.Error("zero image should fail")
	}
	if _, err := SimulatePrecopy(1<<30, nil, cfg); err == nil {
		t.Error("nil dirty model should fail")
	}
}

func TestPrecopyQuiescentGuestSingleRound(t *testing.T) {
	// A guest that dirties nothing migrates in one round with near-zero
	// downtime (just the activation extra).
	cfg := DefaultPrecopyConfig()
	res, err := SimulatePrecopy(1<<30, vm.LinearDirty{RatePerSec: 0, CapBytes: 0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", res.Rounds)
	}
	if res.Downtime > cfg.DowntimeExtra+cfg.Link.LatencySec+1e-9 {
		t.Errorf("downtime %v, want ~%v", res.Downtime, cfg.DowntimeExtra)
	}
}

func TestPrecopyDowntimeMillisecondScale(t *testing.T) {
	// Clark et al. report ~60 ms downtime for a moderately busy guest on
	// GigE; our model should land in the milliseconds-to-tens-of-ms band
	// for a guest dirtying ~10 MiB/s with a bounded working set.
	cfg := DefaultPrecopyConfig()
	dirty := vm.SaturatingDirty{WriteRate: 10 * float64(1<<20), WSSBytes: 64 * float64(1<<20)}
	res, err := SimulatePrecopy(1<<30, dirty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Downtime > 0.2 {
		t.Errorf("downtime %v s, want < 200 ms", res.Downtime)
	}
	if res.Rounds < 2 {
		t.Errorf("busy guest should need multiple rounds, got %d", res.Rounds)
	}
	if res.TotalBytes <= 1<<30 {
		t.Error("total bytes should exceed the image (re-sent dirty pages)")
	}
}

func TestPrecopyHotGuestHitsRoundCap(t *testing.T) {
	// A guest dirtying faster than the link drains never converges; the
	// round cap must force stop-and-copy with a large downtime.
	cfg := DefaultPrecopyConfig()
	cfg.MaxRounds = 5
	dirty := vm.LinearDirty{RatePerSec: 500e6, CapBytes: 1 << 30} // 500 MB/s dirt vs 125 MB/s link
	res, err := SimulatePrecopy(1<<30, dirty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 5 {
		t.Errorf("rounds = %d, want cap 5", res.Rounds)
	}
	if res.Downtime < 1 {
		t.Errorf("non-convergent guest downtime %v, want seconds", res.Downtime)
	}
}

func TestPrecopyFasterLinkShrinksDowntime(t *testing.T) {
	dirty := vm.SaturatingDirty{WriteRate: 20 * float64(1<<20), WSSBytes: 128 * float64(1<<20)}
	slow := DefaultPrecopyConfig()
	fast := DefaultPrecopyConfig()
	fast.Link = netsim.TenGigE
	rSlow, err := SimulatePrecopy(1<<30, dirty, slow)
	if err != nil {
		t.Fatal(err)
	}
	rFast, err := SimulatePrecopy(1<<30, dirty, fast)
	if err != nil {
		t.Fatal(err)
	}
	if rFast.Downtime >= rSlow.Downtime {
		t.Errorf("10GigE downtime %v not below GigE %v", rFast.Downtime, rSlow.Downtime)
	}
	if rFast.TotalSec >= rSlow.TotalSec {
		t.Errorf("10GigE total %v not below GigE %v", rFast.TotalSec, rSlow.TotalSec)
	}
}

// Property: downtime never exceeds total time, bytes at least cover the
// image, rounds within cap.
func TestQuickPrecopyInvariants(t *testing.T) {
	cfg := DefaultPrecopyConfig()
	f := func(imgMB, rateMB, wssMB uint16) bool {
		img := float64(imgMB%2048+1) * float64(1<<20)
		dirty := vm.SaturatingDirty{
			WriteRate: float64(rateMB%512) * float64(1<<20),
			WSSBytes:  float64(wssMB%1024+1) * float64(1<<20),
		}
		res, err := SimulatePrecopy(img, dirty, cfg)
		if err != nil {
			return false
		}
		return res.Downtime <= res.TotalSec &&
			res.TotalBytes >= img &&
			res.Rounds >= 1 && res.Rounds <= cfg.MaxRounds &&
			!math.IsNaN(res.TotalSec)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
