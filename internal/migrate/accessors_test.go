package migrate

import (
	"testing"

	"dvdc/internal/vm"
)

func TestMigrationStatsAccessor(t *testing.T) {
	src, _ := vm.NewMachine("s", 4, 32)
	g, err := NewMigration(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats().Rounds != 0 {
		t.Error("fresh migration has rounds")
	}
	if _, err := g.CopyRound(); err != nil {
		t.Fatal(err)
	}
	if g.Stats().Rounds != 1 || g.Stats().PagesSent != 4 {
		t.Errorf("Stats = %+v", g.Stats())
	}
}
