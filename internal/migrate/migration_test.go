package migrate

import (
	"testing"

	"dvdc/internal/vm"
)

func busyMachine(t *testing.T) (*vm.Machine, *vm.Uniform) {
	t.Helper()
	m, err := vm.NewMachine("guest", 64, 128)
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewUniform(42)
	vm.Run(w, m, 200) // populate with content
	return m, w
}

func TestMigrationConvergesAndMatches(t *testing.T) {
	src, w := busyMachine(t)
	g, err := NewMigration(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave guest execution with rounds until the round payload is
	// small, then pause and finalize.
	for i := 0; i < 10; i++ {
		n, err := g.CopyRound()
		if err != nil {
			t.Fatal(err)
		}
		if n <= 4 {
			break
		}
		vm.Run(w, src, 20) // guest keeps dirtying pages
	}
	stats, err := g.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if !src.Equal(g.Dst()) {
		t.Error("destination differs from source")
	}
	if stats.PagesSent < src.NumPages() {
		t.Errorf("sent %d pages, want >= %d (full first round)", stats.PagesSent, src.NumPages())
	}
}

func TestMigrationFirstRoundShipsEverything(t *testing.T) {
	src, _ := busyMachine(t)
	g, _ := NewMigration(src, nil)
	n, err := g.CopyRound()
	if err != nil {
		t.Fatal(err)
	}
	if n != src.NumPages() {
		t.Errorf("first round shipped %d pages, want %d", n, src.NumPages())
	}
}

func TestMigrationLaterRoundsShipOnlyDirty(t *testing.T) {
	src, _ := busyMachine(t)
	g, _ := NewMigration(src, nil)
	if _, err := g.CopyRound(); err != nil {
		t.Fatal(err)
	}
	src.TouchPage(3, 999)
	src.TouchPage(7, 998)
	n, err := g.CopyRound()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("second round shipped %d pages, want 2", n)
	}
}

func TestMigrationFinalizeWithoutRoundsStillWorks(t *testing.T) {
	src, _ := busyMachine(t)
	g, _ := NewMigration(src, nil)
	if _, err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	if !src.Equal(g.Dst()) {
		t.Error("pure stop-and-copy migration diverged")
	}
}

func TestMigrationDoubleFinalizeFails(t *testing.T) {
	src, _ := busyMachine(t)
	g, _ := NewMigration(src, nil)
	if _, err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Finalize(); err == nil {
		t.Error("double finalize should fail")
	}
	if _, err := g.CopyRound(); err == nil {
		t.Error("round after finalize should fail")
	}
}

func TestHashDedupSkipsKnownPages(t *testing.T) {
	// Destination already holds a template identical to the source: the
	// migration should dedup every page and send (almost) nothing.
	src, _ := busyMachine(t)
	template, _ := vm.NewMachine("template", 64, 128)
	if err := template.LoadImage(src.Image()); err != nil {
		t.Fatal(err)
	}
	idx := NewHashIndex()
	idx.AddMachine(template)

	g, err := NewMigration(src, idx)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := g.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if !src.Equal(g.Dst()) {
		t.Error("deduped migration diverged")
	}
	if stats.PagesSent != 0 {
		t.Errorf("sent %d pages despite full template match", stats.PagesSent)
	}
	if stats.PagesDeduped != src.NumPages() {
		t.Errorf("deduped %d pages, want %d", stats.PagesDeduped, src.NumPages())
	}
}

func TestHashDedupPartialTemplate(t *testing.T) {
	src, _ := busyMachine(t)
	// Index only a fresh zeroed machine: only src's still-zero pages dedup.
	zero, _ := vm.NewMachine("zero", 64, 128)
	idx := NewHashIndex()
	idx.AddMachine(zero)
	g, _ := NewMigration(src, idx)
	stats, err := g.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if !src.Equal(g.Dst()) {
		t.Error("partially deduped migration diverged")
	}
	if stats.PagesDeduped == 0 {
		t.Error("expected some zero pages to dedup")
	}
	if stats.PagesSent == 0 {
		t.Error("expected written pages to be sent")
	}
	if stats.PagesSent+stats.PagesDeduped != src.NumPages() {
		t.Error("sent + deduped should cover all pages")
	}
}

func TestHashIndexBasics(t *testing.T) {
	idx := NewHashIndex()
	if idx.Len() != 0 {
		t.Error("fresh index not empty")
	}
	m, _ := vm.NewMachine("m", 4, 64)
	m.TouchPage(0, 7)
	idx.AddMachine(m)
	// 4 pages but 3 are identical zeros: 2 distinct hashes.
	if idx.Len() != 2 {
		t.Errorf("Len = %d, want 2", idx.Len())
	}
	if _, ok := idx.Lookup(m.PageHash(0)); !ok {
		t.Error("lookup of indexed page failed")
	}
	if _, ok := idx.Lookup(0xdeadbeef); ok {
		t.Error("lookup of bogus hash succeeded")
	}
}

func TestNewMigrationNilSource(t *testing.T) {
	if _, err := NewMigration(nil, nil); err == nil {
		t.Error("nil source should fail")
	}
}
