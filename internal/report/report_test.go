package report

import (
	"strings"
	"testing"

	"dvdc/internal/metrics"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("My Table", "name", "value")
	tb.AddRow("short", 1.5)
	tb.AddRow("a-much-longer-name", 123456789.0)
	out := tb.String()
	if !strings.Contains(out, "My Table") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "name") || !strings.Contains(out, "value") {
		t.Error("missing headers")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	// Separator row uses dashes.
	if !strings.Contains(lines[2], "---") {
		t.Error("missing separator")
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(0.0)
	tb.AddRow(1e-9)
	tb.AddRow(2.5)
	tb.AddRow(3e9)
	out := tb.String()
	for _, want := range []string{"0", "1.000e-09", "2.5", "3.000e+09"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestChartRendersSeriesAndMinima(t *testing.T) {
	s := &metrics.Series{Label: "curve"}
	for i := 1; i <= 50; i++ {
		x := float64(i)
		s.Append(x, (x-25)*(x-25)+10) // parabola, min at x=25
	}
	c := Chart{Title: "parabola", Width: 60, Height: 15, XLabel: "x", YLabel: "y"}
	out := c.RenderWithMinima(s)
	if !strings.Contains(out, "parabola") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "X") {
		t.Error("missing minimum marker")
	}
	if !strings.Contains(out, "min: x=25") {
		t.Errorf("legend should note the minimum:\n%s", out)
	}
}

func TestChartLogScales(t *testing.T) {
	s := &metrics.Series{Label: "log"}
	for _, x := range []float64{1, 10, 100, 1000} {
		s.Append(x, x*x)
	}
	c := Chart{LogX: true, LogY: true, Width: 40, Height: 10, XLabel: "x", YLabel: "y"}
	out := c.Render(s)
	if !strings.Contains(out, "log scale") {
		t.Error("missing log-scale note")
	}
	// All 4 points must be plotted on the canvas (grid rows start with '|';
	// the legend line also contains the marker and must be excluded).
	var plotted int
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "|") {
			plotted += strings.Count(line, "*")
		}
	}
	if plotted != 4 {
		t.Errorf("want 4 markers on canvas, got %d:\n%s", plotted, out)
	}
}

func TestChartEmptySeries(t *testing.T) {
	c := Chart{Title: "empty"}
	out := c.Render(&metrics.Series{Label: "none"})
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart should say so: %q", out)
	}
}

func TestChartMultipleSeriesDistinctMarkers(t *testing.T) {
	a := &metrics.Series{Label: "a"}
	b := &metrics.Series{Label: "b"}
	for i := 1; i <= 10; i++ {
		a.Append(float64(i), float64(i))
		b.Append(float64(i), float64(20-i))
	}
	out := Chart{Width: 40, Height: 10}.Render(a, b)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("expected two marker styles:\n%s", out)
	}
	if !strings.Contains(out, "* = a") || !strings.Contains(out, "o = b") {
		t.Error("legend missing")
	}
}
