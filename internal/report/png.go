package report

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"

	"dvdc/internal/metrics"
)

// PNG rendering of series charts with the standard library's image stack:
// axes, log scaling, per-series colors, point markers with connecting
// segments, and minima markers. Good enough to drop straight into a paper
// reproduction report.

// seriesPalette holds distinguishable colors for up to six curves.
var seriesPalette = []color.RGBA{
	{0x1f, 0x77, 0xb4, 0xff}, // blue
	{0xd6, 0x27, 0x28, 0xff}, // red
	{0x2c, 0xa0, 0x2c, 0xff}, // green
	{0xff, 0x7f, 0x0e, 0xff}, // orange
	{0x94, 0x67, 0xbd, 0xff}, // purple
	{0x8c, 0x56, 0x4b, 0xff}, // brown
}

// WritePNG renders the series as a chart image. Geometry and scales come
// from the Chart configuration (Width/Height are interpreted in pixels here,
// defaulting to 800x500). Minima are marked with small squares when
// markMinima is set via WritePNGWithMinima.
func (c Chart) WritePNG(w io.Writer, series ...*metrics.Series) error {
	return c.writePNG(w, false, series...)
}

// WritePNGWithMinima renders the series and marks each series' minimum.
func (c Chart) WritePNGWithMinima(w io.Writer, series ...*metrics.Series) error {
	return c.writePNG(w, true, series...)
}

func (c Chart) writePNG(w io.Writer, markMinima bool, series ...*metrics.Series) error {
	width, height := c.Width, c.Height
	if width < 200 {
		width = 800
	}
	if height < 150 {
		height = 500
	}
	const margin = 50
	img := image.NewRGBA(image.Rect(0, 0, width, height))
	// White background.
	for i := range img.Pix {
		img.Pix[i] = 0xff
	}

	tx := func(x float64) float64 {
		if c.LogX {
			return math.Log10(math.Max(x, 1e-300))
		}
		return x
	}
	ty := func(y float64) float64 {
		if c.LogY {
			return math.Log10(math.Max(y, 1e-300))
		}
		return y
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, tx(s.X[i]))
			maxX = math.Max(maxX, tx(s.X[i]))
			minY = math.Min(minY, ty(s.Y[i]))
			maxY = math.Max(maxY, ty(s.Y[i]))
		}
	}
	if minX > maxX {
		return fmt.Errorf("report: no data to plot")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	plotW := width - 2*margin
	plotH := height - 2*margin
	px := func(x float64) int { return margin + int((tx(x)-minX)/(maxX-minX)*float64(plotW)) }
	py := func(y float64) int { return height - margin - int((ty(y)-minY)/(maxY-minY)*float64(plotH)) }

	grey := color.RGBA{0x33, 0x33, 0x33, 0xff}
	lightGrey := color.RGBA{0xdd, 0xdd, 0xdd, 0xff}
	// Gridlines: quartiles of each axis.
	for i := 0; i <= 4; i++ {
		gx := margin + plotW*i/4
		gy := margin + plotH*i/4
		drawLine(img, gx, margin, gx, height-margin, lightGrey)
		drawLine(img, margin, gy, width-margin, gy, lightGrey)
	}
	// Axes.
	drawLine(img, margin, height-margin, width-margin, height-margin, grey)
	drawLine(img, margin, margin, margin, height-margin, grey)

	for si, s := range series {
		col := seriesPalette[si%len(seriesPalette)]
		prevX, prevY := -1, -1
		for i := range s.X {
			x, y := px(s.X[i]), py(s.Y[i])
			if prevX >= 0 {
				drawLine(img, prevX, prevY, x, y, col)
			}
			drawDot(img, x, y, 2, col)
			prevX, prevY = x, y
		}
		if markMinima && s.Len() > 0 {
			mx, my := s.MinY()
			drawSquare(img, px(mx), py(my), 5, color.RGBA{0, 0, 0, 0xff})
		}
		// Legend swatch: a filled block per series in the top-left corner.
		for dy := 0; dy < 10; dy++ {
			for dx := 0; dx < 18; dx++ {
				img.SetRGBA(margin+6+dx, margin+6+si*14+dy, col)
			}
		}
	}
	return png.Encode(w, img)
}

// drawLine draws with the integer Bresenham algorithm, clipped to bounds.
func drawLine(img *image.RGBA, x0, y0, x1, y1 int, col color.RGBA) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		setClipped(img, x0, y0, col)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func drawDot(img *image.RGBA, x, y, r int, col color.RGBA) {
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if dx*dx+dy*dy <= r*r {
				setClipped(img, x+dx, y+dy, col)
			}
		}
	}
}

func drawSquare(img *image.RGBA, x, y, r int, col color.RGBA) {
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if abs(dx) == r || abs(dy) == r {
				setClipped(img, x+dx, y+dy, col)
			}
		}
	}
}

func setClipped(img *image.RGBA, x, y int, col color.RGBA) {
	if image.Pt(x, y).In(img.Rect) {
		img.SetRGBA(x, y, col)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
