package report

import (
	"bytes"
	"image/png"
	"testing"

	"dvdc/internal/metrics"
)

func parabola() *metrics.Series {
	s := &metrics.Series{Label: "p"}
	for i := 1; i <= 60; i++ {
		x := float64(i)
		s.Append(x, (x-30)*(x-30)+5)
	}
	return s
}

func TestWritePNGProducesDecodableImage(t *testing.T) {
	var buf bytes.Buffer
	c := Chart{Title: "t", XLabel: "x", YLabel: "y"}
	if err := c.WritePNG(&buf, parabola()); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	if b.Dx() != 800 || b.Dy() != 500 {
		t.Errorf("default geometry %dx%d, want 800x500", b.Dx(), b.Dy())
	}
	// The canvas must not be blank: count non-white pixels.
	nonWhite := 0
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r, g, bb, _ := img.At(x, y).RGBA()
			if r != 0xffff || g != 0xffff || bb != 0xffff {
				nonWhite++
			}
		}
	}
	if nonWhite < 1000 {
		t.Errorf("only %d non-white pixels: chart looks empty", nonWhite)
	}
}

func TestWritePNGCustomGeometryAndLog(t *testing.T) {
	var buf bytes.Buffer
	c := Chart{Width: 400, Height: 300, LogX: true, LogY: true}
	s := &metrics.Series{Label: "log"}
	for _, x := range []float64{1, 10, 100, 1000} {
		s.Append(x, x*x)
	}
	if err := c.WritePNGWithMinima(&buf, s); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 400 || img.Bounds().Dy() != 300 {
		t.Error("custom geometry ignored")
	}
}

func TestWritePNGNoData(t *testing.T) {
	var buf bytes.Buffer
	c := Chart{}
	if err := c.WritePNG(&buf, &metrics.Series{Label: "empty"}); err == nil {
		t.Error("empty series should error")
	}
}

func TestWritePNGMultipleSeries(t *testing.T) {
	var buf bytes.Buffer
	a := parabola()
	b := &metrics.Series{Label: "b"}
	for i := 1; i <= 60; i++ {
		b.Append(float64(i), float64(200+i))
	}
	if err := (Chart{}).WritePNG(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty output")
	}
}
