// Package report renders the benchmark harness's tables and figures as
// plain text: fixed-width tables and ASCII line charts good enough to eyeball
// the shape of a curve (which is the reproduction criterion for Fig. 5).
package report

import (
	"fmt"
	"math"
	"strings"

	"dvdc/internal/metrics"
)

// Table accumulates rows and renders with aligned columns.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Chart renders series as an ASCII scatter/line chart with log-x support.
type Chart struct {
	Title      string
	Width      int
	Height     int
	LogX, LogY bool
	XLabel     string
	YLabel     string
}

// markers label successive series on the canvas.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the series. Series get distinct markers in order; a legend
// maps markers to labels. Minimum per series is marked with 'X' when
// MarkMinima is used via RenderWithMinima.
func (c Chart) Render(series ...*metrics.Series) string {
	return c.render(false, series...)
}

// RenderWithMinima draws the series and overlays an 'X' at each series'
// minimum point, mirroring the X marks in the paper's Fig. 5.
func (c Chart) RenderWithMinima(series ...*metrics.Series) string {
	return c.render(true, series...)
}

func (c Chart) render(markMinima bool, series ...*metrics.Series) string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}
	tx := func(x float64) float64 {
		if c.LogX {
			return math.Log10(math.Max(x, 1e-300))
		}
		return x
	}
	ty := func(y float64) float64 {
		if c.LogY {
			return math.Log10(math.Max(y, 1e-300))
		}
		return y
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if minX > maxX { // no data
		return c.Title + " (no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	plot := func(x, y float64, m byte) {
		col := int(math.Round((tx(x) - minX) / (maxX - minX) * float64(w-1)))
		row := h - 1 - int(math.Round((ty(y)-minY)/(maxY-minY)*float64(h-1)))
		if col >= 0 && col < w && row >= 0 && row < h {
			grid[row][col] = m
		}
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			plot(s.X[i], s.Y[i], m)
		}
	}
	if markMinima {
		for _, s := range series {
			x, y := s.MinY()
			if s.Len() > 0 {
				plot(x, y, 'X')
			}
		}
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title + "\n")
	}
	yLo, yHi := minY, maxY
	if c.LogY {
		yLo, yHi = math.Pow(10, minY), math.Pow(10, maxY)
	}
	fmt.Fprintf(&b, "%s (top=%.4g, bottom=%.4g)\n", c.YLabel, yHi, yLo)
	for _, row := range grid {
		b.WriteString("|" + string(row) + "\n")
	}
	b.WriteString("+" + strings.Repeat("-", w) + "\n")
	xLo, xHi := minX, maxX
	if c.LogX {
		xLo, xHi = math.Pow(10, minX), math.Pow(10, maxX)
	}
	fmt.Fprintf(&b, " %s: %.4g .. %.4g%s\n", c.XLabel, xLo, xHi, logNote(c.LogX))
	for si, s := range series {
		fmt.Fprintf(&b, " %c = %s", markers[si%len(markers)], s.Label)
		if markMinima && s.Len() > 0 {
			x, y := s.MinY()
			fmt.Fprintf(&b, " (min: x=%.4g y=%.4g)", x, y)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func logNote(log bool) string {
	if log {
		return " (log scale)"
	}
	return ""
}
