package dvdc_test

// Godoc-visible, executable usage examples. Each prints deterministic
// output and runs as part of the test suite.

import (
	"bytes"
	"fmt"
	"log"

	"dvdc"
	"dvdc/internal/vm"
)

// Example builds the paper's 4-node / 12-VM cluster, checkpoints it
// disklessly, kills a physical node, and verifies every VM returns to the
// committed state.
func Example() {
	layout, err := dvdc.PaperLayout()
	if err != nil {
		log.Fatal(err)
	}
	cl, err := dvdc.NewCluster(layout, 64, 4096)
	if err != nil {
		log.Fatal(err)
	}
	// Dirty the guests, then take a coordinated diskless checkpoint.
	for i, name := range cl.VMNames() {
		m, _ := cl.Machine(name)
		vm.Run(vm.NewUniform(int64(i)), m, 200)
	}
	if err := cl.CheckpointRound(); err != nil {
		log.Fatal(err)
	}
	committed := map[string][]byte{}
	for _, name := range cl.VMNames() {
		m, _ := cl.Machine(name)
		committed[name] = m.Image()
	}

	// Node 1 fails: 3 VMs and 1 parity block are gone.
	report, err := cl.FailNode(1)
	if err != nil {
		log.Fatal(err)
	}
	ok := 0
	for _, name := range cl.VMNames() {
		m, _ := cl.Machine(name)
		if bytes.Equal(m.Image(), committed[name]) {
			ok++
		}
	}
	fmt.Printf("lost %d VMs, verified %d/12 at the committed checkpoint\n",
		len(report.LostVMs), ok)
	// Output:
	// lost 3 VMs, verified 12/12 at the committed checkpoint
}

// ExampleModel evaluates the corrected Section V equations at the paper's
// parameters.
func ExampleModel() {
	m := dvdc.Model{
		Lambda: 1.0 / (3 * 3600), // MTBF 3 h
		T:      2 * 24 * 3600,    // 2-day job
		Repair: 60,
	}
	e, err := m.ExpectedWithCheckpoint(600, 30) // T_int = 10 min, T_ov = 30 s
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expected completion ratio: %.3f\n", e/m.T)
	// Output:
	// expected completion ratio: 1.087
}

// ExampleOptimalInterval finds the X mark of Fig. 5's diskless curve.
func ExampleOptimalInterval() {
	layout, err := dvdc.PaperLayout()
	if err != nil {
		log.Fatal(err)
	}
	plat, err := dvdc.DefaultPlatform(layout.Nodes)
	if err != nil {
		log.Fatal(err)
	}
	spec := vm.Spec{
		Name:       "hpc-guest",
		ImageBytes: 2 << 30,
		Dirty:      vm.SaturatingDirty{WriteRate: 4 << 20, WSSBytes: 32 << 20},
	}
	om, err := dvdc.NewDisklessOverheads(plat, layout, spec)
	if err != nil {
		log.Fatal(err)
	}
	m := dvdc.Model{Lambda: 1.0 / (3 * 3600), T: 2 * 24 * 3600, Repair: 60}
	opt, err := dvdc.OptimalInterval(m, om, 5, m.T/4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal interval ~%d s, overhead ratio %.3f\n",
		int(opt.Interval/10)*10, opt.Ratio)
	// Output:
	// optimal interval ~130 s, overhead ratio 1.019
}

// ExampleNewDVDCLayoutGroups shows the orthogonality invariant: each RAID
// group places every member and parity block on a distinct physical node.
func ExampleNewDVDCLayoutGroups() {
	layout, err := dvdc.NewDVDCLayoutGroups(6, 1, 2, 3)
	if err != nil {
		log.Fatal(err)
	}
	g := layout.Groups[0]
	fmt.Printf("group 0: %d members, %d parity blocks, survives double failure: %v\n",
		len(g.Members), len(g.ParityNodes), layout.Survives(0, 1))
	// Output:
	// group 0: 3 members, 2 parity blocks, survives double failure: true
}
