package dvdc

import (
	"testing"

	"dvdc/internal/core"
	"dvdc/internal/vm"
)

// The facade tests exercise the public API surface end to end; the deep
// behaviour is covered by each internal package's suite.

func TestFacadeLayouts(t *testing.T) {
	fs, err := NewFirstShotLayout(4)
	if err != nil || fs.Nodes != 5 {
		t.Errorf("first-shot: %v nodes=%d", err, fs.Nodes)
	}
	de, err := NewDedicatedLayout(4, 3)
	if err != nil || len(de.VMs) != 12 {
		t.Errorf("dedicated: %v", err)
	}
	dv, err := NewDVDCLayout(4, 1, 1)
	if err != nil || len(dv.Groups) != 4 {
		t.Errorf("dvdc: %v", err)
	}
	pg, err := NewDVDCLayoutGroups(8, 1, 2, 4)
	if err != nil || pg.Tolerance != 2 {
		t.Errorf("groups: %v", err)
	}
	pl, err := PaperLayout()
	if err != nil || len(pl.VMs) != 12 {
		t.Errorf("paper: %v", err)
	}
}

func TestFacadeClusterLifecycle(t *testing.T) {
	layout, err := PaperLayout()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(layout, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.CheckpointRound(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.FailNode(1); err != nil {
		t.Fatal(err)
	}
	if err := cl.VerifyParity(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSimulate(t *testing.T) {
	layout, err := PaperLayout()
	if err != nil {
		t.Fatal(err)
	}
	plat, err := DefaultPlatform(layout.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	spec := vm.Spec{
		Name:       "facade",
		ImageBytes: 1 << 28,
		Dirty:      vm.SaturatingDirty{WriteRate: 1 << 20, WSSBytes: 1 << 24},
	}
	scheme, err := NewDVDCScheme(plat, layout, spec)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewPoissonFailures(layout.Nodes, 40000, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(core.Config{
		JobSeconds: 50000, Interval: 300, Schedule: sched, Scheme: scheme,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio < 1 {
		t.Errorf("ratio %v", res.Ratio)
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 20 {
		t.Fatalf("expected 20 experiments, got %d", len(ids))
	}
	p := ExperimentParams()
	p.SweepPoints = 20
	p.MCRuns = 2
	res, err := Experiment("E1", p)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "E1" || len(res.Text) == 0 {
		t.Error("E1 result malformed")
	}
	if _, err := Experiment("nope", p); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestFacadeDistributedRuntime(t *testing.T) {
	layout, err := NewDVDCLayoutGroups(4, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	addrs := map[int]string{}
	var closers []func() error
	for i := 0; i < layout.Nodes; i++ {
		n, err := NewNode("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = n.Addr()
		closers = append(closers, n.Close)
	}
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	coord, err := NewCoordinator(layout, addrs, 8, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if err := coord.Setup(); err != nil {
		t.Fatal(err)
	}
	if err := coord.Step(10); err != nil {
		t.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if coord.Epoch() != 1 {
		t.Errorf("epoch %d", coord.Epoch())
	}
}
