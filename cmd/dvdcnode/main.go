// Command dvdcnode runs one DVDC node daemon: it hosts VM memories, keeps
// RAID-group parity, and serves the wire protocol until interrupted. A
// coordinator (cmd/dvdcctl) configures it and drives checkpoint rounds.
//
// Usage:
//
//	dvdcnode -listen 127.0.0.1:7401
//	dvdcnode -listen 127.0.0.1:7401 -obs-addr 127.0.0.1:9100
//
// With -obs-addr the daemon serves Prometheus metrics (/metrics), a health
// probe (/healthz), recent spans (/spans), and net/http/pprof; the bound
// address is printed to stderr ("obs listening on ...") so scripts can use
// -obs-addr 127.0.0.1:0 and discover the kernel-assigned port. With
// -postmortem-dir the daemon keeps a flight recorder and dumps a postmortem
// bundle there on SIGQUIT (and keeps running — SIGQUIT is "explain
// yourself", not "die").
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"dvdc/internal/cli"
	"dvdc/internal/obs"
	"dvdc/internal/runtime"
)

func main() {
	var common cli.Common
	listen := flag.String("listen", "127.0.0.1:0", "address to listen on")
	common.RPCTimeoutFlag(flag.CommandLine, runtime.DefaultRPCTimeout)
	common.FanoutFlag(flag.CommandLine)
	common.ObsAddrFlag(flag.CommandLine)
	common.PostmortemFlag(flag.CommandLine, "on SIGQUIT")
	common.HealthFlag(flag.CommandLine)
	flag.Parse()

	var opts runtime.NodeOptions
	if common.ObsAddr != "" {
		opts.Tracer = obs.NewTracer(0)
		opts.Registry = obs.NewRegistry()
	}
	rec := common.Recorder(opts.Registry, opts.Tracer)
	opts.Recorder = rec
	node, err := runtime.NewNodeWith(*listen, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvdcnode: %v\n", err)
		os.Exit(1)
	}
	node.SetRPCTimeout(common.RPCTimeout)
	node.SetFanout(common.Fanout)
	fmt.Printf("dvdcnode listening on %s\n", node.Addr())
	ev, healthMount := common.StartHealth(opts.Registry, rec)
	defer ev.Stop()
	var mounts []obs.Mount
	if healthMount != nil {
		mounts = append(mounts, healthMount)
	}
	srv, err := common.ServeObs("dvdcnode", opts.Registry, opts.Tracer, mounts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvdcnode: %v\n", err)
		os.Exit(1)
	}
	if srv != nil {
		defer srv.Close()
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	quit := make(chan os.Signal, 1)
	if rec != nil {
		signal.Notify(quit, syscall.SIGQUIT)
	}
	for {
		select {
		case <-quit:
			if path, err := rec.AutoDump("sigquit"); err != nil {
				fmt.Fprintf(os.Stderr, "dvdcnode: postmortem dump: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "dvdcnode: postmortem bundle %s\n", path)
			}
		case <-sig:
			fmt.Println("dvdcnode: shutting down")
			node.Close()
			return
		}
	}
}
