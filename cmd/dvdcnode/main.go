// Command dvdcnode runs one DVDC node daemon: it hosts VM memories, keeps
// RAID-group parity, and serves the wire protocol until interrupted. A
// coordinator (cmd/dvdcctl) configures it and drives checkpoint rounds.
//
// Usage:
//
//	dvdcnode -listen 127.0.0.1:7401
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"dvdc/internal/runtime"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "address to listen on")
	timeout := flag.Duration("rpc-timeout", 0, "per-peer-RPC deadline (0 = default 30s)")
	fanout := flag.Int("fanout", 0, "max concurrent parity shipments per prepare (0 = default)")
	flag.Parse()

	node, err := runtime.NewNode(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvdcnode: %v\n", err)
		os.Exit(1)
	}
	if *timeout > 0 {
		node.SetRPCTimeout(*timeout)
	}
	node.SetFanout(*fanout)
	fmt.Printf("dvdcnode listening on %s\n", node.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("dvdcnode: shutting down")
	node.Close()
}
