// Command dvdcnode runs one DVDC node daemon: it hosts VM memories, keeps
// RAID-group parity, and serves the wire protocol until interrupted. A
// coordinator (cmd/dvdcctl) configures it and drives checkpoint rounds.
//
// Usage:
//
//	dvdcnode -listen 127.0.0.1:7401
//	dvdcnode -listen 127.0.0.1:7401 -obs-addr 127.0.0.1:9100
//
// With -obs-addr the daemon serves Prometheus metrics (/metrics), a health
// probe (/healthz), recent spans (/spans), and net/http/pprof; the bound
// address is printed to stderr ("obs listening on ...") so scripts can use
// -obs-addr 127.0.0.1:0 and discover the kernel-assigned port. With
// -postmortem-dir the daemon keeps a flight recorder and dumps a postmortem
// bundle there on SIGQUIT (and keeps running — SIGQUIT is "explain
// yourself", not "die").
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"dvdc/internal/obs"
	"dvdc/internal/runtime"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "address to listen on")
	timeout := flag.Duration("rpc-timeout", 0, "per-peer-RPC deadline (0 = default 30s)")
	fanout := flag.Int("fanout", 0, "max concurrent parity shipments per prepare (0 = default)")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /healthz, /spans and pprof here (empty = disabled)")
	pmDir := flag.String("postmortem-dir", "", "dump a flight-recorder bundle here on SIGQUIT (empty = disabled)")
	flag.Parse()

	var opts runtime.NodeOptions
	var srv *obs.Server
	if *obsAddr != "" {
		opts.Tracer = obs.NewTracer(0)
		opts.Registry = obs.NewRegistry()
		var err error
		srv, err = obs.Serve(*obsAddr, opts.Registry, opts.Tracer)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvdcnode: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
	}
	var rec *obs.FlightRecorder
	if *pmDir != "" {
		rec = obs.NewFlightRecorder(0)
		rec.SetDumpDir(*pmDir)
		rec.SetRegistry(opts.Registry)
		opts.Tracer.SetTap(rec.Span)
		opts.Recorder = rec
	}
	node, err := runtime.NewNodeWith(*listen, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvdcnode: %v\n", err)
		os.Exit(1)
	}
	if *timeout > 0 {
		node.SetRPCTimeout(*timeout)
	}
	node.SetFanout(*fanout)
	fmt.Printf("dvdcnode listening on %s\n", node.Addr())
	if srv != nil {
		fmt.Printf("dvdcnode observability on http://%s/metrics\n", srv.Addr())
		fmt.Fprintf(os.Stderr, "obs listening on %s\n", srv.Addr())
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	quit := make(chan os.Signal, 1)
	if rec != nil {
		signal.Notify(quit, syscall.SIGQUIT)
	}
	for {
		select {
		case <-quit:
			if path, err := rec.AutoDump("sigquit"); err != nil {
				fmt.Fprintf(os.Stderr, "dvdcnode: postmortem dump: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "dvdcnode: postmortem bundle %s\n", path)
			}
		case <-sig:
			fmt.Println("dvdcnode: shutting down")
			node.Close()
			return
		}
	}
}
