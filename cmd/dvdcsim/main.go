// Command dvdcsim runs one simulated job on a virtualized cluster under
// Poisson node failures and reports completion statistics for the chosen
// checkpointing scheme.
//
// Usage:
//
//	dvdcsim -scheme dvdc -nodes 4 -stacks 1 -interval 120 -job 172800
//	dvdcsim -scheme diskfull -interval 1500
//	dvdcsim -scheme remus -interval 0.5
//	dvdcsim -scheme none
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"dvdc/internal/analytic"
	"dvdc/internal/cli"
	"dvdc/internal/cluster"
	"dvdc/internal/core"
	"dvdc/internal/diskfull"
	"dvdc/internal/failure"
	"dvdc/internal/obs"
	"dvdc/internal/remus"
	"dvdc/internal/storage"
	"dvdc/internal/vm"
)

func main() {
	var (
		scheme   = flag.String("scheme", "dvdc", "dvdc | diskfull | remus | none")
		nodes    = flag.Int("nodes", 4, "physical nodes")
		stacks   = flag.Int("stacks", 1, "RAID group stacks")
		interval = flag.Float64("interval", 120, "checkpoint interval / Remus epoch (s)")
		job      = flag.Float64("job", 2*24*3600, "job length (s)")
		mtbf     = flag.Float64("mtbf", 3*3600, "system MTBF (s); per-node MTBF = mtbf*nodes")
		image    = flag.Int64("image", 2<<30, "VM image bytes")
		wss      = flag.Float64("wss", 32*(1<<20), "dirty working set bytes")
		rate     = flag.Float64("rate", 4*(1<<20), "write rate bytes/s")
		seed     = flag.Int64("seed", 1, "failure seed")
		runsN    = flag.Int("runs", 1, "independent runs to average")
		traceStr = flag.String("trace", "", "comma-separated absolute failure times (s); replaces the Poisson schedule")
		traceCSV = flag.String("tracefile", "", "CSV failure log (node,seconds) to replay; replaces the Poisson schedule")
		repair   = flag.Float64("repair", 0, "node out-of-service time after a failure (s); engages degraded-rate execution")
	)
	var common cli.Common
	common.ObsAddrFlag(flag.CommandLine)
	flag.Parse()

	reg := obs.NewRegistry()
	srv, err := common.ServeObs("dvdcsim", reg, nil)
	fatal(err)
	if srv != nil {
		defer srv.Close()
	}

	layout, err := cluster.BuildDistributed(*nodes, *stacks, 1)
	fatal(err)
	plat, err := analytic.DefaultPlatform(layout.Nodes)
	fatal(err)
	spec := vm.Spec{
		Name:       "guest",
		ImageBytes: *image,
		Dirty:      vm.SaturatingDirty{WriteRate: *rate, WSSBytes: *wss},
	}
	fullSpec := vm.Spec{
		Name:       "guest-full",
		ImageBytes: *image,
		Dirty:      vm.FullImageDirty{ImageBytes: float64(*image)},
	}

	var sch core.Scheme
	switch *scheme {
	case "dvdc":
		sch, err = core.NewDVDCScheme(plat, layout, spec)
	case "diskfull":
		sch, err = diskfull.New(plat, storage.DefaultNAS(), len(layout.VMs),
			len(layout.VMs)/layout.Nodes, fullSpec, false)
	case "remus":
		sch, err = remus.NewScheme(spec)
	case "none":
		// Restart-from-zero: modeled as one giant interval with no overhead.
		sch = noCheckpoint{}
		*interval = *job
	default:
		fatal(fmt.Errorf("unknown scheme %q", *scheme))
	}
	fatal(err)

	var sumRatio, sumFail, sumLost float64
	for r := 0; r < *runsN; r++ {
		var sched *failure.NodeSchedule
		if *traceCSV != "" {
			f, err := os.Open(*traceCSV)
			fatal(err)
			sched, err = failure.LoadTraceCSV(f, layout.Nodes)
			f.Close()
			fatal(err)
		} else if *traceStr != "" {
			var times []float64
			for _, f := range strings.Split(*traceStr, ",") {
				v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
				fatal(err)
				times = append(times, v)
			}
			tr, err := failure.NewTrace(times)
			fatal(err)
			sched, err = failure.NewNodeSchedule([]failure.Process{tr})
			fatal(err)
		} else {
			var err error
			sched, err = failure.NewPoissonNodes(layout.Nodes, *mtbf*float64(layout.Nodes), *seed+int64(r)*104729)
			fatal(err)
		}
		res, err := core.Run(core.Config{
			JobSeconds: *job, Interval: *interval, DetectSec: 1, RepairSec: *repair,
			Schedule: sched, Scheme: sch,
		})
		fatal(err)
		reg.Counter("dvdc_sim_runs_total", "scheme", sch.Name()).Inc()
		reg.Histogram("dvdc_sim_completion_ratio", []float64{1, 1.05, 1.1, 1.25, 1.5, 2, 4}, "scheme", sch.Name()).Observe(res.Ratio)
		sumRatio += res.Ratio
		sumFail += float64(res.Failures)
		sumLost += res.LostWork
		if *runsN == 1 {
			fmt.Printf("scheme      %s\n", sch.Name())
			fmt.Printf("completion  %.0f s (ratio %.4f)\n", res.Completion, res.Ratio)
			fmt.Printf("checkpoints %d\n", res.Checkpoints)
			fmt.Printf("failures    %d (lost work %.0f s, recovery %.1f s, degraded %.0f s)\n",
				res.Failures, res.LostWork, res.RecoveryTime, res.DegradedTime)
			return
		}
	}
	n := float64(*runsN)
	fmt.Printf("scheme %s: mean ratio %.4f, mean failures %.1f, mean lost work %.0f s over %d runs\n",
		sch.Name(), sumRatio/n, sumFail/n, sumLost/n, *runsN)
}

// noCheckpoint makes the engine model restart-from-zero: the single
// "checkpoint" never happens (interval = job), failures roll to time zero.
type noCheckpoint struct{}

func (noCheckpoint) Name() string                                { return "no checkpointing" }
func (noCheckpoint) CheckpointOverhead(float64) (float64, error) { return 0, nil }
func (noCheckpoint) RecoveryTime(int) (float64, error)           { return math.Nextafter(0, 1), nil }

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvdcsim: %v\n", err)
		os.Exit(1)
	}
}
