package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"dvdc/internal/obs"
	"dvdc/internal/obs/adapt"
	"dvdc/internal/obs/collect"
	"dvdc/internal/obs/health"
)

// topMain is the live cluster view: scrape every -obs-addr endpoint's /spans
// and /metrics, merge the spans into round trees, and render the latest
// round's verdict — single-rooted-and-closed or not, the per-lane time
// breakdown, the straggler, and habitual latency outliers.
func topMain(args []string) {
	fs := flag.NewFlagSet("dvdcctl top", flag.ExitOnError)
	var (
		scrape   = fs.String("scrape", "", "comma-separated obs endpoints (host:port of each -obs-addr)")
		interval = fs.Duration("interval", 2*time.Second, "refresh interval in watch mode")
		once     = fs.Bool("once", false, "render one refresh and exit (for scripts and CI)")
		width    = fs.Int("width", 100, "render width in columns")
		count    = fs.Int("n", 0, "stop after this many refreshes (0 = until interrupted)")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *scrape == "" {
		fmt.Fprintln(os.Stderr, "dvdcctl top: -scrape is required (comma-separated obs endpoints)")
		os.Exit(2)
	}
	var sources []string
	for _, a := range strings.Split(*scrape, ",") {
		if a = strings.TrimSpace(a); a != "" {
			sources = append(sources, a)
		}
	}
	c := collect.New()
	outliers := collect.NewOutlierTracker(0, 0)
	for i := 0; ; i++ {
		v := collect.BuildTopView(c, sources, outliers)
		if i > 0 {
			fmt.Println(strings.Repeat("-", *width))
		}
		fmt.Print(collect.RenderTop(v, *width))
		if *once || (*count > 0 && i+1 >= *count) {
			// One-shot mode doubles as the CI assertion hook: exit nonzero when
			// the merged round trace is incomplete, so a pipeline can gate on it.
			if v.Trace != 0 && !v.Closed {
				os.Exit(1)
			}
			return
		}
		time.Sleep(*interval)
	}
}

// healthMain watches the cluster's SLO verdict: scrape every endpoint's
// /api/v1/health report (served by processes run with -health) and render the
// per-rule table. One-shot mode is the CI gate — exit 2 when an endpoint is
// unreachable, 1 when any rule is firing, 0 when the cluster is healthy.
func healthMain(args []string) {
	fs := flag.NewFlagSet("dvdcctl health", flag.ExitOnError)
	var (
		scrape   = fs.String("scrape", "", "comma-separated obs endpoints (host:port of each -obs-addr)")
		interval = fs.Duration("interval", 2*time.Second, "refresh interval in watch mode")
		once     = fs.Bool("once", false, "render one refresh and exit nonzero when firing (for scripts and CI)")
		width    = fs.Int("width", 100, "render width in columns")
		count    = fs.Int("n", 0, "stop after this many refreshes (0 = until interrupted)")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *scrape == "" {
		fmt.Fprintln(os.Stderr, "dvdcctl health: -scrape is required (comma-separated obs endpoints)")
		os.Exit(2)
	}
	var sources []string
	for _, a := range strings.Split(*scrape, ",") {
		if a = strings.TrimSpace(a); a != "" {
			sources = append(sources, a)
		}
	}
	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; ; i++ {
		reports := make([]health.SourceReport, 0, len(sources))
		for _, src := range sources {
			reports = append(reports, fetchHealth(client, src))
		}
		if i > 0 {
			fmt.Println(strings.Repeat("-", *width))
		}
		fmt.Print(health.RenderReports(reports, *width))
		if *once || (*count > 0 && i+1 >= *count) {
			code := 0
			for _, sr := range reports {
				switch {
				case sr.Err != nil:
					code = 2
				case code == 0 && !sr.Report.Healthy:
					code = 1
				}
			}
			os.Exit(code)
		}
		time.Sleep(*interval)
	}
}

// adaptMain renders the adaptive control loop's paper trail from each
// endpoint's /metrics exposition: the live tuning state (chunk size,
// pipeline width, checkpoint interval, failure rate) and the per-rule
// decision tallies — recommended, applied, failed, and every skip reason.
// One-shot mode is the CI gate for the convergence experiment: exit 2 when
// an endpoint is unreachable, 1 when fewer than -min-applied decisions have
// been applied cluster-wide, 0 otherwise.
func adaptMain(args []string) {
	fs := flag.NewFlagSet("dvdcctl adapt", flag.ExitOnError)
	var (
		scrape     = fs.String("scrape", "", "comma-separated obs endpoints (host:port of each -obs-addr)")
		interval   = fs.Duration("interval", 2*time.Second, "refresh interval in watch mode")
		once       = fs.Bool("once", false, "render one refresh and exit (for scripts and CI)")
		minApplied = fs.Int("min-applied", 0, "with -once: exit 1 unless at least this many decisions were applied")
		count      = fs.Int("n", 0, "stop after this many refreshes (0 = until interrupted)")
		width      = fs.Int("width", 100, "render width in columns")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *scrape == "" {
		fmt.Fprintln(os.Stderr, "dvdcctl adapt: -scrape is required (comma-separated obs endpoints)")
		os.Exit(2)
	}
	var sources []string
	for _, a := range strings.Split(*scrape, ",") {
		if a = strings.TrimSpace(a); a != "" {
			sources = append(sources, a)
		}
	}
	c := collect.New()
	for i := 0; ; i++ {
		if i > 0 {
			fmt.Println(strings.Repeat("-", *width))
		}
		var applied float64
		unreachable := false
		for _, src := range sources {
			exp, err := c.ScrapeMetrics(src)
			if err != nil {
				fmt.Printf("%s: unreachable: %v\n", src, err)
				unreachable = true
				continue
			}
			v := adapt.BuildView(exp)
			applied += v.TotalApplied()
			fmt.Printf("%s:\n%s", src, adapt.RenderView(v))
		}
		if *once || (*count > 0 && i+1 >= *count) {
			switch {
			case unreachable:
				os.Exit(2)
			case applied < float64(*minApplied):
				fmt.Printf("applied decisions %.0f < required %d\n", applied, *minApplied)
				os.Exit(1)
			}
			return
		}
		time.Sleep(*interval)
	}
}

// fetchHealth pulls one endpoint's /api/v1/health document.
func fetchHealth(client *http.Client, src string) health.SourceReport {
	sr := health.SourceReport{Source: src}
	resp, err := client.Get("http://" + src + "/api/v1/health")
	if err != nil {
		sr.Err = err
		return sr
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		sr.Err = fmt.Errorf("HTTP %d (is the endpoint running with -health?)", resp.StatusCode)
		return sr
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr.Report); err != nil {
		sr.Err = fmt.Errorf("decode /api/v1/health: %w", err)
	}
	return sr
}

// postmortemMain renders a flight-recorder bundle: the pre-failure window of
// spans, RPC outcomes, and chaos events a process dumped when it hit a
// PartialCommitError, a soak invariant violation, or SIGQUIT.
func postmortemMain(args []string) {
	fs := flag.NewFlagSet("dvdcctl postmortem", flag.ExitOnError)
	var (
		bundle = fs.String("bundle", "", "one bundle directory (postmortem-...)")
		dir    = fs.String("dir", "", "directory of bundles; renders the newest")
		list   = fs.Bool("list", false, "with -dir: list bundles instead of rendering")
		tail   = fs.Int("tail", 40, "how many trailing flight entries to show")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	path := *bundle
	if path == "" && *dir != "" {
		found, err := obs.FindBundles(*dir)
		fatal(err)
		if len(found) == 0 {
			fatal(fmt.Errorf("no postmortem bundles under %s", *dir))
		}
		if *list {
			for _, p := range found {
				fmt.Println(p)
			}
			return
		}
		path = found[len(found)-1]
	}
	if path == "" {
		fmt.Fprintln(os.Stderr, "dvdcctl postmortem: need -bundle <dir> or -dir <dir>")
		os.Exit(2)
	}
	b, err := obs.ReadBundle(path)
	fatal(err)
	fmt.Print(collect.RenderPostmortem(b, *tail))
}
