// Command dvdcctl coordinates a set of dvdcnode daemons: it assigns the
// DVDC layout, drives workload and two-phase checkpoint rounds, and — when
// told a node died — runs the recovery protocol (parity reconstruction,
// re-placement, parity re-homing).
//
// Typical session against four local daemons:
//
//	dvdcctl -nodes 127.0.0.1:7401,127.0.0.1:7402,127.0.0.1:7403,127.0.0.1:7404 \
//	        -rounds 5 -steps 200 -kill 2
//
// runs five checkpointed work rounds, then declares node 2 dead and runs the
// recovery protocol around it (whether or not the daemon process is actually
// gone: the controller stops talking to it either way).
//
// The trace subcommand renders a JSONL span file (from dvdcsoak -trace-jsonl
// or the coordinator's -trace-jsonl) as an ASCII phase timeline:
//
//	dvdcctl trace -in soak.jsonl              # one summary line per trace
//	dvdcctl trace -in soak.jsonl -epoch 7     # timeline of epoch 7's round
//	dvdcctl trace -in soak.jsonl -trace 1f3a  # timeline of one trace id (hex)
//
// The top subcommand is the live cluster view: it scrapes every process's
// -obs-addr endpoint, merges spans into round trees, and names the round's
// straggler; the postmortem subcommand renders a flight-recorder bundle:
//
//	dvdcctl top -scrape 127.0.0.1:7501,127.0.0.1:7502        # watch
//	dvdcctl top -scrape 127.0.0.1:7501,127.0.0.1:7502 -once  # CI assertion
//	dvdcctl postmortem -dir ./postmortems                    # newest bundle
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dvdc/internal/cluster"
	"dvdc/internal/obs"
	"dvdc/internal/runtime"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "trace":
			traceMain(os.Args[2:])
			return
		case "top":
			topMain(os.Args[2:])
			return
		case "postmortem":
			postmortemMain(os.Args[2:])
			return
		}
	}
	var (
		nodeList = flag.String("nodes", "", "comma-separated node addresses (one per physical node)")
		stacks   = flag.Int("stacks", 1, "RAID group stacks")
		pages    = flag.Int("pages", 256, "pages per VM")
		pageSize = flag.Int("pagesize", 4096, "bytes per page")
		rounds   = flag.Int("rounds", 3, "checkpointed work rounds")
		steps    = flag.Uint64("steps", 100, "workload steps per round")
		kill     = flag.Int("kill", -1, "after the rounds, recover from the death of this node index")
		seed     = flag.Int64("seed", 1, "workload seed")
		tol      = flag.Int("tolerance", 1, "parity blocks per group (RS code; 1 = XOR)")
		group    = flag.Int("groupsize", 0, "members per RAID group (0 = nodes - tolerance)")
		compress = flag.Bool("compress", false, "flate-compress delta shipments")
		timeout  = flag.Duration("rpc-timeout", 0, "per-RPC deadline (0 = default 30s)")
		fanout   = flag.Int("fanout", 0, "max concurrent per-node RPCs per fan-out (0 = default)")
		obsAddr  = flag.String("obs-addr", "", "serve /metrics, /healthz, /spans and pprof here (empty = disabled)")
		pace     = flag.Duration("round-interval", 0, "sleep between rounds (lets dvdcctl top watch a live session)")
		traceOut = flag.String("trace-jsonl", "", "stream every span to this JSONL file (render with dvdcctl trace)")
		pmDir    = flag.String("postmortem-dir", "", "dump a flight-recorder bundle here on partial commit (empty = disabled)")
	)
	flag.Parse()
	addrs := strings.Split(*nodeList, ",")
	if *nodeList == "" || len(addrs) < 2 {
		fmt.Fprintln(os.Stderr, "dvdcctl: need at least two -nodes addresses")
		os.Exit(2)
	}
	gs := *group
	if gs == 0 {
		gs = len(addrs) - *tol
	}
	layout, err := cluster.BuildDistributedGroups(len(addrs), *stacks, *tol, gs)
	fatal(err)
	addrMap := map[int]string{}
	for i, a := range addrs {
		addrMap[i] = strings.TrimSpace(a)
	}
	coord, err := runtime.NewCoordinator(layout, addrMap, *pages, *pageSize, *seed)
	fatal(err)
	defer coord.Close()

	var tracer *obs.Tracer
	registry := obs.NewRegistry()
	if *obsAddr != "" || *traceOut != "" {
		tracer = obs.NewTracer(0)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		fatal(err)
		defer f.Close()
		tracer.SetSink(f)
		defer tracer.Flush()
	}
	if *obsAddr != "" {
		srv, err := obs.Serve(*obsAddr, registry, tracer)
		fatal(err)
		defer srv.Close()
		fmt.Printf("observability on http://%s/metrics\n", srv.Addr())
		// The bound address also goes to stderr: with -obs-addr :0 the port is
		// kernel-assigned, and scripts wiring a collector discover it here.
		fmt.Fprintf(os.Stderr, "obs listening on %s\n", srv.Addr())
	}
	coord.SetObserver(tracer, registry)
	if *pmDir != "" {
		rec := obs.NewFlightRecorder(0)
		rec.SetDumpDir(*pmDir)
		rec.SetRegistry(registry)
		rec.SetMeta("seed", *seed)
		rec.SetMeta("nodes", len(addrs))
		tracer.SetTap(rec.Span)
		coord.SetFlightRecorder(rec)
	}
	coord.SetCompress(*compress)
	if *timeout > 0 {
		coord.SetRPCTimeout(*timeout)
	}
	coord.SetFanout(*fanout)
	fatal(coord.Setup())
	fmt.Printf("configured %d nodes, %d VMs, %d groups\n", layout.Nodes, len(layout.VMs), len(layout.Groups))

	for r := 1; r <= *rounds; r++ {
		fatal(coord.Step(*steps))
		fatal(coord.Checkpoint())
		fmt.Printf("round %d: %s\n", r, coord.RoundStats())
		if *pace > 0 && r < *rounds {
			time.Sleep(*pace)
		}
	}
	sums, err := coord.Checksums()
	fatal(err)
	fmt.Printf("committed state over %d VMs\n", len(sums))
	if *rounds > 0 {
		fmt.Printf("phase timings:\n%s", coord.Phases())
	}

	if *kill >= 0 {
		fmt.Printf("recovering from death of node %d...\n", *kill)
		plan, err := coord.RecoverNode(*kill)
		fatal(err)
		for _, s := range plan.Steps {
			fmt.Printf("  %-14s group %d -> node %d", s.Kind, s.Group, s.TargetNode)
			if s.VM != "" {
				fmt.Printf(" (vm %s)", s.VM)
			}
			if s.Degraded {
				fmt.Printf(" [degraded]")
			}
			fmt.Println()
		}
		after, err := coord.Checksums()
		fatal(err)
		mismatch := 0
		for vmName, want := range sums {
			if after[vmName] != want {
				mismatch++
			}
		}
		fmt.Printf("recovery complete: %d/%d VM states verified\n", len(sums)-mismatch, len(sums))
		if mismatch > 0 {
			os.Exit(1)
		}
	}
}

// traceMain renders a JSONL span file: by default a one-line summary per
// trace; with -trace or -epoch, the full ASCII timeline of one span tree.
func traceMain(args []string) {
	fs := flag.NewFlagSet("dvdcctl trace", flag.ExitOnError)
	var (
		in      = fs.String("in", "", "JSONL span file ('-' = stdin)")
		traceID = fs.String("trace", "", "render this trace id (hex)")
		epoch   = fs.Int64("epoch", -1, "render the checkpoint round that targeted this epoch")
		width   = fs.Int("width", 100, "timeline width in columns")
	)
	fs.Parse(args)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "dvdcctl trace: -in is required")
		os.Exit(2)
	}
	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		fatal(err)
		defer f.Close()
		r = f
	}
	spans, err := obs.ReadJSONL(r)
	fatal(err)
	if len(spans) == 0 {
		fmt.Println("no spans in input")
		return
	}
	order, byTrace := obs.GroupTraces(spans)

	pick := uint64(0)
	switch {
	case *traceID != "":
		id, err := strconv.ParseUint(strings.TrimPrefix(*traceID, "0x"), 16, 64)
		fatal(err)
		if _, ok := byTrace[id]; !ok {
			fatal(fmt.Errorf("trace %016x not found (%d traces in %s)", id, len(order), *in))
		}
		pick = id
	case *epoch >= 0:
		want := strconv.FormatInt(*epoch, 10)
		for _, id := range order {
			for _, s := range byTrace[id] {
				if s.Parent == 0 && s.Name == "round" && s.Attrs["epoch"] == want {
					pick = id
				}
			}
		}
		if pick == 0 {
			fatal(fmt.Errorf("no round trace with epoch %d in %s", *epoch, *in))
		}
	case len(order) == 1:
		pick = order[0]
	}
	if pick != 0 {
		fmt.Print(obs.RenderTimeline(byTrace[pick], *width))
		return
	}
	for _, line := range obs.SummarizeTraces(spans) {
		fmt.Println(line)
	}
	fmt.Printf("%d traces; render one with -trace <id> or -epoch <n>\n", len(order))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvdcctl: %v\n", err)
		os.Exit(1)
	}
}
