// Command dvdcctl coordinates a set of dvdcnode daemons through the
// declarative checkpoint service: every session builds the control plane
// (request store, admission gate, reconciler) over the coordinator, then
// submits Checkpoint and Restore request objects and watches their status —
// the same scheduling path remote callers use over the HTTP API.
//
// Typical session against four local daemons:
//
//	dvdcctl -nodes 127.0.0.1:7401,127.0.0.1:7402,127.0.0.1:7403,127.0.0.1:7404 \
//	        -rounds 5 -steps 200 -kill 2
//
// runs five checkpointed work rounds, then declares node 2 dead and submits
// a Restore request around it (whether or not the daemon process is actually
// gone: the controller stops talking to it either way).
//
// The serve subcommand runs the session headless: it configures the cluster,
// mounts the service API under /api/v1 on the -obs-addr mux, and reconciles
// submitted requests until interrupted. apply, get, and watch speak to it:
//
//	dvdcctl serve -nodes ... -obs-addr 127.0.0.1:7500 -quota alpha=2,beta=1
//	dvdcctl apply -addr 127.0.0.1:7500 -kind checkpoint -tenant alpha -steps 100 -watch
//	dvdcctl get   -addr 127.0.0.1:7500
//	dvdcctl watch -addr 127.0.0.1:7500 -id ckpt-1
//
// The trace subcommand renders a JSONL span file (from dvdcsoak -trace-jsonl
// or the coordinator's -trace-jsonl) as an ASCII phase timeline:
//
//	dvdcctl trace -in soak.jsonl              # one summary line per trace
//	dvdcctl trace -in soak.jsonl -epoch 7     # timeline of epoch 7's round
//	dvdcctl trace -in soak.jsonl -trace 1f3a  # timeline of one trace id (hex)
//
// The top subcommand is the live cluster view: it scrapes every process's
// -obs-addr endpoint, merges spans into round trees, and names the round's
// straggler; the postmortem subcommand renders a flight-recorder bundle:
//
//	dvdcctl top -scrape 127.0.0.1:7501,127.0.0.1:7502        # watch
//	dvdcctl top -scrape 127.0.0.1:7501,127.0.0.1:7502 -once  # CI assertion
//	dvdcctl postmortem -dir ./postmortems                    # newest bundle
//
// The health subcommand renders the SLO health engine's verdict from every
// endpoint running with -health (burn-rate state per rule, one table row per
// source), and trace can jump from a request object to the reconcile round
// traces its status links:
//
//	dvdcctl health -scrape 127.0.0.1:7501 -interval 2s   # watch the SLOs
//	dvdcctl health -scrape 127.0.0.1:7501 -once          # CI: nonzero when firing
//
// The adapt subcommand renders the adaptive control loop's decision tallies
// and live tuning state from /metrics (see dvdcsoak -adaptive): per rule,
// how many recommendations fired, were applied, failed, or were skipped and
// why; one-shot mode gates CI on the loop actually having acted:
//
//	dvdcctl adapt -scrape 127.0.0.1:7501 -interval 2s    # watch the decisions
//	dvdcctl adapt -scrape 127.0.0.1:7501 -once -min-applied 1  # CI: nonzero unless applied
//	dvdcctl get   -addr 127.0.0.1:7500 -id ckpt-1 -o wide   # shows round trace ids
//	dvdcctl trace -addr 127.0.0.1:7500 -id ckpt-1           # renders those rounds
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dvdc/internal/chaos"
	"dvdc/internal/cli"
	"dvdc/internal/cluster"
	"dvdc/internal/obs"
	"dvdc/internal/obs/collect"
	"dvdc/internal/obs/health"
	"dvdc/internal/runtime"
	"dvdc/internal/service"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "trace":
			traceMain(os.Args[2:])
			return
		case "top":
			topMain(os.Args[2:])
			return
		case "health":
			healthMain(os.Args[2:])
			return
		case "adapt":
			adaptMain(os.Args[2:])
			return
		case "postmortem":
			postmortemMain(os.Args[2:])
			return
		case "serve":
			serveMain(os.Args[2:])
			return
		case "apply":
			applyMain(os.Args[2:])
			return
		case "get":
			getMain(os.Args[2:])
			return
		case "watch":
			watchMain(os.Args[2:])
			return
		}
	}
	sessionMain()
}

// sessionFlags are the cluster-shape flags the interactive session and the
// serve subcommand share.
type sessionFlags struct {
	nodeList  string
	stacks    int
	pages     int
	pageSize  int
	seed      int64
	tol       int
	group     int
	compress  bool
	slowNode  int
	slowDelay time.Duration
	common    cli.Common
}

func (s *sessionFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&s.nodeList, "nodes", "", "comma-separated node addresses (one per physical node)")
	fs.IntVar(&s.stacks, "stacks", 1, "RAID group stacks")
	fs.IntVar(&s.pages, "pages", 256, "pages per VM")
	fs.IntVar(&s.pageSize, "pagesize", 4096, "bytes per page")
	fs.Int64Var(&s.seed, "seed", 1, "workload seed")
	fs.IntVar(&s.tol, "tolerance", 1, "parity blocks per group (RS code; 1 = XOR)")
	fs.IntVar(&s.group, "groupsize", 0, "members per RAID group (0 = nodes - tolerance)")
	fs.BoolVar(&s.compress, "compress", false, "flate-compress delta shipments")
	fs.IntVar(&s.slowNode, "slow-node", -1,
		"chaos: stretch every frame to/from this node index by -slow-delay (the habitually slow peer the health engine must catch)")
	fs.DurationVar(&s.slowDelay, "slow-delay", 400*time.Millisecond, "chaos: per-frame delay for -slow-node")
	s.common.RPCTimeoutFlag(fs, runtime.DefaultRPCTimeout)
	s.common.FanoutFlag(fs)
	s.common.ObsAddrFlag(fs)
	s.common.TraceJSONLFlag(fs)
	s.common.PostmortemFlag(fs, "on partial commit")
	s.common.HealthFlag(fs)
}

// session is a configured cluster with its control plane mounted: the
// coordinator, the executor seam, and the service driving it.
type session struct {
	coord     *runtime.Coordinator
	exec      *runtime.ServiceExecutor
	svc       *service.Service
	tracer    *obs.Tracer
	registry  *obs.Registry
	health    *health.Evaluator
	closeSink func()
	srv       *obs.Server
}

// open builds the coordinator, the service, and the observability plane from
// parsed flags, and runs Setup (which prints the configured line).
func (s *sessionFlags) open(opts service.Options) *session {
	addrs := strings.Split(s.nodeList, ",")
	if s.nodeList == "" || len(addrs) < 2 {
		fmt.Fprintln(os.Stderr, "dvdcctl: need at least two -nodes addresses")
		os.Exit(2)
	}
	gs := s.group
	if gs == 0 {
		gs = len(addrs) - s.tol
	}
	layout, err := cluster.BuildDistributedGroups(len(addrs), s.stacks, s.tol, gs)
	fatal(err)
	addrMap := map[int]string{}
	for i, a := range addrs {
		addrMap[i] = strings.TrimSpace(a)
	}
	coord, err := runtime.NewCoordinator(layout, addrMap, s.pages, s.pageSize, s.seed)
	fatal(err)

	se := &session{coord: coord, registry: obs.NewRegistry()}
	if s.common.WantTracer() {
		se.tracer = obs.NewTracer(0)
	}
	closeSink, err := s.common.OpenTraceSink(se.tracer)
	fatal(err)
	se.closeSink = closeSink
	coord.SetObserver(se.tracer, se.registry)
	rec := s.common.Recorder(se.registry, se.tracer)
	if rec != nil {
		rec.SetMeta("seed", s.seed)
		rec.SetMeta("nodes", len(addrs))
		coord.SetFlightRecorder(rec)
	}
	coord.SetCompress(s.compress)
	coord.SetRPCTimeout(s.common.RPCTimeout)
	coord.SetFanout(s.common.Fanout)
	if s.slowNode >= 0 && s.slowDelay > 0 {
		// A chaos injector on the coordinator's dial path, carrying only the
		// standing slow-node delay: the seeded smoke case for the health
		// engine's round-time SLO.
		inj := chaos.New(s.seed, chaos.Config{})
		inj.Pause()
		for i, a := range addrMap {
			inj.Register(i, a)
		}
		inj.SlowNode(s.slowNode, s.slowDelay)
		coord.SetDialer(inj.Dialer(chaos.Coordinator))
		fmt.Printf("chaos: node %d slowed %v/frame\n", s.slowNode, s.slowDelay)
	}

	se.exec = runtime.NewServiceExecutor(coord)
	opts.Tracer, opts.Registry = se.tracer, se.registry
	svc, err := service.Open(se.exec, opts)
	fatal(err)
	se.svc = svc
	if opts.StateDir != "" {
		fmt.Printf("state dir %s: replayed %d records, %d requests (dropped %d bytes) in %s\n",
			opts.StateDir, svc.Replay.Records, svc.Replay.Requests,
			svc.Replay.DroppedBytes, svc.Replay.Duration.Round(time.Microsecond))
	}

	mounts := []obs.Mount{se.svc.Mount}
	ev, healthMount := s.common.StartHealth(se.registry, rec)
	se.health = ev
	if healthMount != nil {
		mounts = append(mounts, healthMount)
	}
	srv, err := s.common.ServeObs("dvdcctl", se.registry, se.tracer, mounts...)
	fatal(err)
	se.srv = srv

	fatal(coord.Setup())
	fmt.Printf("configured %d nodes, %d VMs, %d groups\n", layout.Nodes, len(layout.VMs), len(layout.Groups))
	se.svc.Start()
	return se
}

// close tears the session down: reconciler first (it quiesces the
// coordinator), then the connections, then the telemetry sinks.
func (se *session) close() {
	se.svc.Stop()
	se.health.Stop()
	se.coord.Close()
	if se.srv != nil {
		se.srv.Close()
	}
	se.closeSink()
}

// submitAndWait drives one request object to a terminal phase and fails the
// process if it did not converge.
func (se *session) submitAndWait(kind service.Kind, spec service.Spec, timeout time.Duration) *service.Request {
	req, err := se.svc.Submit(kind, spec)
	fatal(err)
	final, err := se.svc.WaitTerminal(req.ID, timeout)
	fatal(err)
	if final.Status.Phase != service.PhaseSucceeded {
		fatal(fmt.Errorf("request %s (%s) %s: %s", final.ID, final.Kind, final.Status.Phase, final.Status.Message))
	}
	return final
}

// sessionWait bounds how long the interactive session waits for one request
// to converge; generous, because a restore may retry through real recovery.
const sessionWait = 10 * time.Minute

func sessionMain() {
	var sf sessionFlags
	var (
		rounds = flag.Int("rounds", 3, "checkpointed work rounds")
		steps  = flag.Uint64("steps", 100, "workload steps per round")
		kill   = flag.Int("kill", -1, "after the rounds, recover from the death of this node index")
		tenant = flag.String("tenant", "cli", "tenant the session's requests are accounted to")
	)
	sf.register(flag.CommandLine)
	sf.common.RoundIntervalFlag(flag.CommandLine)
	flag.Parse()

	se := sf.open(service.Options{})
	defer se.close()

	for r := 1; r <= *rounds; r++ {
		se.submitAndWait(service.KindCheckpoint, service.Spec{Tenant: *tenant, Steps: *steps}, sessionWait)
		fmt.Printf("round %d: %s\n", r, se.coord.RoundStats())
		if sf.common.RoundInterval > 0 && r < *rounds {
			time.Sleep(sf.common.RoundInterval)
		}
	}
	sums, err := se.coord.Checksums()
	fatal(err)
	fmt.Printf("committed state over %d VMs\n", len(sums))
	if *rounds > 0 {
		fmt.Printf("phase timings:\n%s", se.coord.Phases())
	}

	if *kill >= 0 {
		fmt.Printf("recovering from death of node %d...\n", *kill)
		se.exec.DeclareFailed(*kill)
		se.submitAndWait(service.KindRestore, service.Spec{Tenant: *tenant, Nodes: []int{*kill}}, sessionWait)
		if plan := se.exec.LastPlan(); plan != nil {
			for _, s := range plan.Steps {
				fmt.Printf("  %-14s group %d -> node %d", s.Kind, s.Group, s.TargetNode)
				if s.VM != "" {
					fmt.Printf(" (vm %s)", s.VM)
				}
				if s.Degraded {
					fmt.Printf(" [degraded]")
				}
				fmt.Println()
			}
		}
		after, err := se.coord.Checksums()
		fatal(err)
		mismatch := 0
		for vmName, want := range sums {
			if after[vmName] != want {
				mismatch++
			}
		}
		fmt.Printf("recovery complete: %d/%d VM states verified\n", len(sums)-mismatch, len(sums))
		if mismatch > 0 {
			os.Exit(1)
		}
	}
}

// parseQuotas parses "tenant=N[,tenant=N...]" into the admission table.
func parseQuotas(s string) (map[string]service.Quota, error) {
	out := map[string]service.Quota{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad -quota entry %q (want tenant=N)", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(kv[1]))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -quota cap in %q (want a positive integer)", part)
		}
		out[strings.TrimSpace(kv[0])] = service.Quota{MaxActive: n}
	}
	return out, nil
}

// serveMain is the headless session: configure the cluster, mount /api/v1 on
// the obs endpoint, and reconcile submitted requests until interrupted.
func serveMain(args []string) {
	fs := flag.NewFlagSet("dvdcctl serve", flag.ExitOnError)
	var sf sessionFlags
	var (
		quota    = fs.String("quota", "", "per-tenant active-request caps, tenant=N[,tenant=N...]")
		defQuota = fs.Int("default-quota", 0, "active-request cap for unlisted tenants (0 = service default)")
		retries  = fs.Int("max-retries", 0, "reconcile attempts per request (0 = service default)")
		stateDir = fs.String("state-dir", "",
			"durable store directory: journal every request there and replay it on startup (empty = in-memory only)")
	)
	sf.register(fs)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if sf.common.ObsAddr == "" {
		fmt.Fprintln(os.Stderr, "dvdcctl serve: -obs-addr is required (the service API mounts there)")
		os.Exit(2)
	}
	quotas, err := parseQuotas(*quota)
	fatal(err)

	se := sf.open(service.Options{Quotas: quotas, DefaultQuota: *defQuota, MaxRetries: *retries, StateDir: *stateDir})
	defer se.close()
	fmt.Printf("service API on http://%s/api/v1/requests\n", se.srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("dvdcctl serve: shutting down")
}

// printRequest is the one-line rendering get/apply/watch share.
func printRequest(r *service.Request) {
	fmt.Printf("%-10s %-10s %-10s %-10s retries=%d epoch=%d", r.ID, r.Kind, r.Spec.Tenant, r.Status.Phase, r.Status.Retries, r.Status.Epoch)
	if len(r.Status.Casualties) > 0 {
		fmt.Printf(" casualties=%v", r.Status.Casualties)
	}
	if r.Status.Message != "" {
		fmt.Printf("  %s", r.Status.Message)
	}
	fmt.Println()
}

// printRequestWide is printRequest plus the request↔trace linkage: the trace
// ids of the reconcile rounds that drove the request, newest last.
func printRequestWide(r *service.Request) {
	printRequest(r)
	if len(r.Status.TraceIDs) > 0 {
		fmt.Printf("           traces=%s\n", strings.Join(r.Status.TraceIDs, ","))
	}
}

// applyMain submits one request object over the HTTP API. Quota rejections
// exit 3 (backpressure), other failures exit 1, so scripts can tell "try
// again later" from "broken".
func applyMain(args []string) {
	fs := flag.NewFlagSet("dvdcctl apply", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "", "service API address (host:port printed by serve)")
		kindStr  = fs.String("kind", "checkpoint", "checkpoint | restore")
		tenant   = fs.String("tenant", "cli", "tenant the request is accounted to")
		priority = fs.Int("priority", 0, "queue priority (higher runs first)")
		steps    = fs.Uint64("steps", 0, "checkpoint: workload steps before the round")
		recover  = fs.String("recover", "", "restore: comma-separated failed node indexes")
		watch    = fs.Bool("watch", false, "block until the request reaches a terminal phase")
		timeout  = fs.Duration("timeout", 5*time.Minute, "with -watch: give up after this long")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "dvdcctl apply: -addr is required")
		os.Exit(2)
	}
	var kind service.Kind
	switch strings.ToLower(*kindStr) {
	case "checkpoint":
		kind = service.KindCheckpoint
	case "restore":
		kind = service.KindRestore
	default:
		fmt.Fprintf(os.Stderr, "dvdcctl apply: unknown -kind %q (want checkpoint or restore)\n", *kindStr)
		os.Exit(2)
	}
	spec := service.Spec{Tenant: *tenant, Priority: *priority, Steps: *steps}
	if *recover != "" {
		for _, part := range strings.Split(*recover, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			fatal(err)
			spec.Nodes = append(spec.Nodes, n)
		}
	}
	c := service.NewClient(*addr)
	req, err := c.Submit(kind, spec)
	var qe *service.QuotaError
	if errors.As(err, &qe) {
		fmt.Fprintf(os.Stderr, "dvdcctl apply: %v\n", qe)
		os.Exit(3)
	}
	fatal(err)
	printRequest(req)
	if *watch {
		watchOne(c, req.ID, *timeout)
	}
}

// watchOne follows one request to a terminal phase, printing transitions;
// exits 1 unless it Succeeded.
func watchOne(c *service.Client, id string, timeout time.Duration) {
	final, err := c.Watch(id, timeout, func(r *service.Request) { printRequest(r) })
	fatal(err)
	if final.Status.Phase != service.PhaseSucceeded {
		os.Exit(1)
	}
}

// getMain lists request objects (or one, with -id), plus the quota table
// with -quotas.
func getMain(args []string) {
	fs := flag.NewFlagSet("dvdcctl get", flag.ExitOnError)
	var (
		addr   = fs.String("addr", "", "service API address (host:port printed by serve)")
		id     = fs.String("id", "", "one request id (default: list all)")
		tenant = fs.String("tenant", "", "list only this tenant's requests")
		quotas = fs.Bool("quotas", false, "print the per-tenant quota table instead")
		output = fs.String("o", "", "output format: wide adds the reconcile round trace ids (jump into them with dvdcctl trace)")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "dvdcctl get: -addr is required")
		os.Exit(2)
	}
	wide := *output == "wide"
	if *output != "" && !wide {
		fmt.Fprintf(os.Stderr, "dvdcctl get: unknown -o %q (want wide)\n", *output)
		os.Exit(2)
	}
	show := printRequest
	if wide {
		show = printRequestWide
	}
	c := service.NewClient(*addr)
	switch {
	case *quotas:
		tenants, def, err := c.Quotas()
		fatal(err)
		fmt.Printf("default quota: %d active\n", def)
		for t, q := range tenants {
			fmt.Printf("%-10s limit=%d active=%d\n", t, q.Limit, q.Active)
		}
	case *id != "":
		req, err := c.Get(*id)
		fatal(err)
		show(req)
	default:
		reqs, err := c.List(*tenant)
		fatal(err)
		for _, r := range reqs {
			show(r)
		}
		fmt.Printf("%d request(s)\n", len(reqs))
	}
}

// watchMain follows one request by id.
func watchMain(args []string) {
	fs := flag.NewFlagSet("dvdcctl watch", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "", "service API address (host:port printed by serve)")
		id      = fs.String("id", "", "request id to follow")
		timeout = fs.Duration("timeout", 5*time.Minute, "give up after this long")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *addr == "" || *id == "" {
		fmt.Fprintln(os.Stderr, "dvdcctl watch: -addr and -id are required")
		os.Exit(2)
	}
	watchOne(service.NewClient(*addr), *id, *timeout)
}

// traceMain renders a JSONL span file: by default a one-line summary per
// trace; with -trace or -epoch, the full ASCII timeline of one span tree.
// With -addr and -id it jumps from a request object to its round traces
// instead: fetch the request over the API, follow Status.TraceIDs, and
// render each tree from the same endpoint's /spans buffer.
func traceMain(args []string) {
	fs := flag.NewFlagSet("dvdcctl trace", flag.ExitOnError)
	var (
		in      = fs.String("in", "", "JSONL span file ('-' = stdin)")
		traceID = fs.String("trace", "", "render this trace id (hex)")
		epoch   = fs.Int64("epoch", -1, "render the checkpoint round that targeted this epoch")
		width   = fs.Int("width", 100, "timeline width in columns")
		addr    = fs.String("addr", "", "service API address: jump from a request (-id) to its round traces")
		reqID   = fs.String("id", "", "with -addr: request id whose round traces to render")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *addr != "" || *reqID != "" {
		if *addr == "" || *reqID == "" {
			fmt.Fprintln(os.Stderr, "dvdcctl trace: -addr and -id go together")
			os.Exit(2)
		}
		traceRequest(*addr, *reqID, *width)
		return
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "dvdcctl trace: -in is required (or -addr with -id)")
		os.Exit(2)
	}
	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		fatal(err)
		defer f.Close()
		r = f
	}
	spans, err := obs.ReadJSONL(r)
	fatal(err)
	if len(spans) == 0 {
		fmt.Println("no spans in input")
		return
	}
	order, byTrace := obs.GroupTraces(spans)

	pick := uint64(0)
	switch {
	case *traceID != "":
		id, err := strconv.ParseUint(strings.TrimPrefix(*traceID, "0x"), 16, 64)
		fatal(err)
		if _, ok := byTrace[id]; !ok {
			fatal(fmt.Errorf("trace %016x not found (%d traces in %s)", id, len(order), *in))
		}
		pick = id
	case *epoch >= 0:
		want := strconv.FormatInt(*epoch, 10)
		for _, id := range order {
			for _, s := range byTrace[id] {
				// Service-driven rounds nest under a reconcile root, so the
				// round span is not necessarily the trace root.
				if s.Name == "round" && s.Attrs["epoch"] == want {
					pick = id
				}
			}
		}
		if pick == 0 {
			fatal(fmt.Errorf("no round trace with epoch %d in %s", *epoch, *in))
		}
	case len(order) == 1:
		pick = order[0]
	}
	if pick != 0 {
		fmt.Print(obs.RenderTimeline(byTrace[pick], *width))
		return
	}
	for _, line := range obs.SummarizeTraces(spans) {
		fmt.Println(line)
	}
	fmt.Printf("%d traces; render one with -trace <id> or -epoch <n>\n", len(order))
}

// traceRequest is the request→trace jump: fetch one request object, follow
// its Status.TraceIDs into the endpoint's /spans buffer, and render each
// reconcile round's timeline. The serve subcommand mounts /api/v1 and /spans
// on the same listener, so one -addr reaches both.
func traceRequest(addr, id string, width int) {
	req, err := service.NewClient(addr).Get(id)
	fatal(err)
	if len(req.Status.TraceIDs) == 0 {
		fatal(fmt.Errorf("request %s carries no round trace ids yet (no reconcile attempt has started, or the server runs without -obs-addr tracing)", req.ID))
	}
	col := collect.New()
	if _, err := col.ScrapeSpans(addr); err != nil {
		fatal(fmt.Errorf("scrape /spans from %s: %w", addr, err))
	}
	printRequestWide(req)
	for _, hexID := range req.Status.TraceIDs {
		tid, err := strconv.ParseUint(strings.TrimPrefix(hexID, "0x"), 16, 64)
		fatal(err)
		tree := col.Tree(tid)
		if tree == nil || len(tree.Spans) == 0 {
			fmt.Printf("trace %s: no spans in the endpoint's buffer (evicted?)\n", hexID)
			continue
		}
		verdict := "closed"
		if err := tree.Verify(); err != nil {
			verdict = err.Error()
		}
		fmt.Printf("trace %s (%d spans, %s):\n", hexID, len(tree.Spans), verdict)
		fmt.Print(obs.RenderTimeline(tree.Spans, width))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvdcctl: %v\n", err)
		os.Exit(1)
	}
}
