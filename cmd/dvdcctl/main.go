// Command dvdcctl coordinates a set of dvdcnode daemons: it assigns the
// DVDC layout, drives workload and two-phase checkpoint rounds, and — when
// told a node died — runs the recovery protocol (parity reconstruction,
// re-placement, parity re-homing).
//
// Typical session against four local daemons:
//
//	dvdcctl -nodes 127.0.0.1:7401,127.0.0.1:7402,127.0.0.1:7403,127.0.0.1:7404 \
//	        -rounds 5 -steps 200 -kill 2
//
// runs five checkpointed work rounds, then declares node 2 dead and runs the
// recovery protocol around it (whether or not the daemon process is actually
// gone: the controller stops talking to it either way).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dvdc/internal/cluster"
	"dvdc/internal/runtime"
)

func main() {
	var (
		nodeList = flag.String("nodes", "", "comma-separated node addresses (one per physical node)")
		stacks   = flag.Int("stacks", 1, "RAID group stacks")
		pages    = flag.Int("pages", 256, "pages per VM")
		pageSize = flag.Int("pagesize", 4096, "bytes per page")
		rounds   = flag.Int("rounds", 3, "checkpointed work rounds")
		steps    = flag.Uint64("steps", 100, "workload steps per round")
		kill     = flag.Int("kill", -1, "after the rounds, recover from the death of this node index")
		seed     = flag.Int64("seed", 1, "workload seed")
		tol      = flag.Int("tolerance", 1, "parity blocks per group (RS code; 1 = XOR)")
		group    = flag.Int("groupsize", 0, "members per RAID group (0 = nodes - tolerance)")
		compress = flag.Bool("compress", false, "flate-compress delta shipments")
		timeout  = flag.Duration("rpc-timeout", 0, "per-RPC deadline (0 = default 30s)")
		fanout   = flag.Int("fanout", 0, "max concurrent per-node RPCs per fan-out (0 = default)")
	)
	flag.Parse()
	addrs := strings.Split(*nodeList, ",")
	if *nodeList == "" || len(addrs) < 2 {
		fmt.Fprintln(os.Stderr, "dvdcctl: need at least two -nodes addresses")
		os.Exit(2)
	}
	gs := *group
	if gs == 0 {
		gs = len(addrs) - *tol
	}
	layout, err := cluster.BuildDistributedGroups(len(addrs), *stacks, *tol, gs)
	fatal(err)
	addrMap := map[int]string{}
	for i, a := range addrs {
		addrMap[i] = strings.TrimSpace(a)
	}
	coord, err := runtime.NewCoordinator(layout, addrMap, *pages, *pageSize, *seed)
	fatal(err)
	defer coord.Close()
	coord.SetCompress(*compress)
	if *timeout > 0 {
		coord.SetRPCTimeout(*timeout)
	}
	coord.SetFanout(*fanout)
	fatal(coord.Setup())
	fmt.Printf("configured %d nodes, %d VMs, %d groups\n", layout.Nodes, len(layout.VMs), len(layout.Groups))

	for r := 1; r <= *rounds; r++ {
		fatal(coord.Step(*steps))
		fatal(coord.Checkpoint())
		fmt.Printf("round %d: %s\n", r, coord.RoundStats())
	}
	sums, err := coord.Checksums()
	fatal(err)
	fmt.Printf("committed state over %d VMs\n", len(sums))
	if *rounds > 0 {
		fmt.Printf("phase timings:\n%s", coord.Phases())
	}

	if *kill >= 0 {
		fmt.Printf("recovering from death of node %d...\n", *kill)
		plan, err := coord.RecoverNode(*kill)
		fatal(err)
		for _, s := range plan.Steps {
			fmt.Printf("  %-14s group %d -> node %d", s.Kind, s.Group, s.TargetNode)
			if s.VM != "" {
				fmt.Printf(" (vm %s)", s.VM)
			}
			if s.Degraded {
				fmt.Printf(" [degraded]")
			}
			fmt.Println()
		}
		after, err := coord.Checksums()
		fatal(err)
		mismatch := 0
		for vmName, want := range sums {
			if after[vmName] != want {
				mismatch++
			}
		}
		fmt.Printf("recovery complete: %d/%d VM states verified\n", len(sums)-mismatch, len(sums))
		if mismatch > 0 {
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvdcctl: %v\n", err)
		os.Exit(1)
	}
}
