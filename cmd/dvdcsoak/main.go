// Command dvdcsoak runs the seeded chaos soak against a live loopback
// cluster: N checkpoint rounds under injected frame corruption, connection
// drops, delays, transient partitions, and Poisson node kills, with the
// invariant battery of runtime.RunSoak checked after every round.
//
// Everything nondeterministic derives from -seed, so any failure this
// command reports is replayed exactly by rerunning with the printed seed
// (see EXPERIMENTS.md, "Reproducing a chaos failure by seed").
//
// Usage:
//
//	dvdcsoak -seed 424242                      # paper 4-node/12-VM layout
//	dvdcsoak -nodes 8 -rounds 20 -kill-mtbf 90
//	dvdcsoak -nodes 16 -group-size 4 -p-corrupt 0.02 -p-drop 0.02
//	dvdcsoak -chunk-faults 2 -chunk-size 256   # aim drop/corrupt at delta chunk frames
//	dvdcsoak -service                          # drive rounds through the checkpoint service
//	dvdcsoak -service -controller-restarts 2   # kill/restart the controller mid-soak (journal replay)
//	dvdcsoak -trace-jsonl soak.jsonl           # then: dvdcctl trace -in soak.jsonl
//	dvdcsoak -obs-addr 127.0.0.1:9100          # live /metrics during the soak
//	dvdcsoak -health -obs-addr 127.0.0.1:9100  # plus SLO burn-rate alerts on /api/v1/health
//	dvdcsoak -slow-node 1 -slow-delay 200ms -round-interval 250ms \
//	    -health -obs-addr 127.0.0.1:9100       # watch `dvdcctl health` catch the slow node
//	dvdcsoak -slow-node 1 -slow-delay 25ms -kill-mtbf 0 -adaptive \
//	    -rounds 16                             # watch the advisor drain the slow keeper
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dvdc/internal/chaos"
	"dvdc/internal/cli"
	"dvdc/internal/cluster"
	"dvdc/internal/obs"
	"dvdc/internal/obs/adapt"
	"dvdc/internal/runtime"
)

// soakFlags is every dvdcsoak flag value, filled by registerFlags.
type soakFlags struct {
	nodes, stacks, tolerance, groupSize int
	rounds                              int
	steps                               uint64
	pages, pageSize                     int
	seed                                int64
	pCorrupt, pDrop, pDelay, pPart      float64
	armed, chunkSize, chunkArms         int
	killMTBF                            float64
	service                             bool
	adaptive                            bool
	stateDir                            string
	controllerRestarts                  int
	slowNode, slowFrom, slowUntil       int
	slowDelay                           time.Duration
	roundInterval                       time.Duration
	verbose                             bool
	common                              cli.Common
}

// registerFlags registers every dvdcsoak flag on fs, with defaults taken
// from the runtime's own defaulting constants. Split out of main so the
// tests can assert the CLI defaults and the library defaults never drift.
func registerFlags(fs *flag.FlagSet) *soakFlags {
	var f soakFlags
	fs.IntVar(&f.nodes, "nodes", 4, "physical nodes")
	fs.IntVar(&f.stacks, "stacks", 1, "RAID group stacks")
	fs.IntVar(&f.tolerance, "tolerance", 1, "parity blocks per group")
	fs.IntVar(&f.groupSize, "group-size", 0, "VMs per group (0 = nodes-tolerance, the paper's Fig. 4)")
	fs.IntVar(&f.rounds, "rounds", runtime.DefaultSoakRounds, "checkpoint rounds")
	fs.Uint64Var(&f.steps, "steps", runtime.DefaultSoakSteps, "workload steps per round")
	fs.IntVar(&f.pages, "pages", runtime.DefaultSoakPages, "pages per VM")
	fs.IntVar(&f.pageSize, "page-size", runtime.DefaultSoakPageSize, "bytes per page")
	fs.Int64Var(&f.seed, "seed", 1, "master seed: workloads, chaos, kills, arm plan")
	fs.Float64Var(&f.pCorrupt, "p-corrupt", 0.01, "per-frame corruption probability")
	fs.Float64Var(&f.pDrop, "p-drop", 0.01, "per-frame connection-drop probability")
	fs.Float64Var(&f.pDelay, "p-delay", 0.05, "per-frame delay probability")
	fs.Float64Var(&f.pPart, "p-partition", 0.1, "per-round transient partition probability")
	fs.IntVar(&f.armed, "arm-per-round", 2, "armed one-shot faults per round")
	fs.IntVar(&f.chunkSize, "chunk-size", 0, "data-path chunk size in bytes (0 = default chunked, -1 = monolithic)")
	fs.IntVar(&f.chunkArms, "chunk-faults", 0, "armed one-shot drop/corrupt faults per round aimed at delta chunk frames")
	fs.Float64Var(&f.killMTBF, "kill-mtbf", 120, "per-node MTBF in virtual seconds (0 = no kills)")
	fs.BoolVar(&f.service, "service", false,
		"drive every round through the declarative checkpoint service (request objects + reconciler) instead of invoking the coordinator directly")
	fs.StringVar(&f.stateDir, "state-dir", "",
		"directory for the service store's journal (requires -service; empty = a temp dir when -controller-restarts is set, else no journal)")
	fs.IntVar(&f.controllerRestarts, "controller-restarts", 0,
		"kill and restart the service controller this many times mid-soak, replaying its journal (requires -service)")
	fs.BoolVar(&f.adaptive, "adaptive", false,
		"close the telemetry loop: an advisor may evacuate parity keepers off habitually slow peers, retune the chunk pipeline, and retune the checkpoint interval from the live failure rate (classic loop only, not -service)")
	fs.IntVar(&f.slowNode, "slow-node", -1,
		"make this node's data-plane ingest habitually slow: every bulk frame shipped to it stalls by -slow-delay (-1 = off; the health engine's round-time SLO should fire, and -adaptive should drain its parity)")
	fs.DurationVar(&f.slowDelay, "slow-delay", 400*time.Millisecond, "per-frame stall for -slow-node")
	fs.IntVar(&f.slowFrom, "slow-from", 0, "first round (0-based) the -slow-node stall is active")
	fs.IntVar(&f.slowUntil, "slow-until", 0, "first round the stall is lifted (0 = through the end)")
	fs.DurationVar(&f.roundInterval, "round-interval", 0,
		"wall-clock pause between rounds (0 = flat out); paces a soak being watched over -obs-addr")
	fs.BoolVar(&f.verbose, "v", false, "print the full fault log and per-round digest")
	f.common.RPCTimeoutFlag(fs, runtime.DefaultSoakRPCTimeout)
	f.common.TraceJSONLFlag(fs)
	f.common.ObsAddrFlag(fs)
	f.common.PostmortemFlag(fs, "on invariant violation or SIGQUIT")
	f.common.HealthFlag(fs)
	return &f
}

func main() {
	f := registerFlags(flag.CommandLine)
	flag.Parse()

	gs := f.groupSize
	if gs <= 0 {
		gs = f.nodes - f.tolerance
	}
	layout, err := cluster.BuildDistributedGroups(f.nodes, f.stacks, f.tolerance, gs)
	fatal(err)

	cfg := runtime.SoakConfig{
		Layout:        layout,
		Rounds:        f.rounds,
		StepsPerRound: f.steps,
		Pages:         f.pages,
		PageSize:      f.pageSize,
		Seed:          f.seed,
		Chaos:         chaos.Config{PCorrupt: f.pCorrupt, PDrop: f.pDrop, PDelay: f.pDelay},
		ArmPerRound:   f.armed,
		ChunkSize:     f.chunkSize,
		ChunkFaults:   f.chunkArms,
		PPartition:    f.pPart,
		KillMTBF:      f.killMTBF,
		RPCTimeout:    f.common.RPCTimeout,
		RoundInterval: f.roundInterval,
		Service:       f.service,
		Adaptive:      f.adaptive,
		Registry:      obs.NewRegistry(),

		StateDir:           f.stateDir,
		ControllerRestarts: f.controllerRestarts,

		SlowNode:  f.slowNode,
		SlowDelay: f.slowDelay,
		SlowFrom:  f.slowFrom,
		SlowUntil: f.slowUntil,
	}
	if f.slowNode < 0 {
		cfg.SlowDelay = 0
	}
	if (f.stateDir != "" || f.controllerRestarts > 0) && !f.service {
		fatal(fmt.Errorf("-state-dir and -controller-restarts require -service"))
	}
	if f.adaptive && f.service {
		fatal(fmt.Errorf("-adaptive drives the classic loop and cannot be combined with -service"))
	}
	if f.common.WantTracer() {
		cfg.Tracer = obs.NewTracer(1 << 15)
	}
	if f.common.TraceJSONL != "" {
		tf, err := os.Create(f.common.TraceJSONL)
		fatal(err)
		defer tf.Close()
		cfg.TraceSink = tf
	}
	if f.common.PostmortemDir != "" {
		cfg.PostmortemDir = f.common.PostmortemDir
		cfg.Recorder = obs.NewFlightRecorder(0)
		// SIGQUIT = "explain yourself": dump the black box and keep soaking.
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			for range quit {
				if path, err := cfg.Recorder.Dump(cfg.PostmortemDir, "sigquit"); err != nil {
					fmt.Fprintf(os.Stderr, "dvdcsoak: postmortem dump: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "dvdcsoak: postmortem bundle %s\n", path)
				}
			}
		}()
	}
	// The soak additionally ticks the evaluator once per round so the alert
	// timeline is aligned to round boundaries even on a fast run; the wall
	// clock loop keeps /api/v1/health fresh between rounds.
	ev, healthMount := f.common.StartHealth(cfg.Registry, cfg.Recorder)
	defer ev.Stop()
	cfg.Health = ev
	var mounts []obs.Mount
	if healthMount != nil {
		mounts = append(mounts, healthMount)
	}
	srv, err := f.common.ServeObs("dvdcsoak", cfg.Registry, cfg.Tracer, mounts...)
	fatal(err)
	if srv != nil {
		defer srv.Close()
	}

	mode := "direct"
	if f.service {
		mode = "service"
	}
	fmt.Printf("dvdcsoak: %d nodes, %d VMs, %d rounds, seed %d (%s mode)\n",
		layout.Nodes, len(layout.VMs), cfg.Rounds, cfg.Seed, mode)
	start := time.Now()
	res, err := runtime.RunSoak(cfg)
	elapsed := time.Since(start)

	if res != nil {
		if f.verbose || err != nil {
			for _, line := range res.RoundDigest() {
				fmt.Println("  " + line)
			}
			fmt.Println("fault log:")
			for _, line := range res.FaultLogDigest() {
				fmt.Println("  " + line)
			}
		}
		fmt.Printf("faults: %v\n", res.Counters)
		fmt.Printf("final epoch %d across %d rounds, %d VMs verified, %.2fs wall\n",
			res.Epoch, len(res.Rounds), len(res.Checksums), elapsed.Seconds())
		if f.adaptive {
			printAdaptSummary(res, f.verbose)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvdcsoak: INVARIANT VIOLATION: %v\n", err)
		fmt.Fprintf(os.Stderr, "dvdcsoak: replay with -seed %d\n", f.seed)
		if f.common.PostmortemDir != "" {
			if bundles, berr := obs.FindBundles(f.common.PostmortemDir); berr == nil && len(bundles) > 0 {
				fmt.Fprintf(os.Stderr, "dvdcsoak: postmortem: dvdcctl postmortem -bundle %s\n", bundles[len(bundles)-1])
			}
		}
		os.Exit(1)
	}
	if f.common.TraceJSONL != "" {
		fmt.Printf("spans written to %s; render with: dvdcctl trace -in %s\n", f.common.TraceJSONL, f.common.TraceJSONL)
	}
	fmt.Printf("all invariants held; replay with -seed %d\n", f.seed)
}

// printAdaptSummary renders the adaptive run's paper trail: how many
// decisions the advisor took and applied, and how the checkpoint wall moved
// across the run (first round, worst round, final round) — the one-line
// answer to "did the loop converge". The full decision log (inputs -> rule
// -> action, one row per decision) prints under -v.
func printAdaptSummary(res *runtime.SoakResult, verbose bool) {
	var all []adapt.Decision
	applied, rebalances := 0, 0
	for _, rr := range res.Rounds {
		all = append(all, rr.Adapt...)
		for _, d := range rr.Adapt {
			if d.Action != adapt.ActionApplied {
				continue
			}
			applied++
			if d.Rule == adapt.RuleKeeperRebalance {
				rebalances++
			}
		}
	}
	var first, peak, final time.Duration
	if n := len(res.Rounds); n > 0 {
		first = res.Rounds[0].Wall
		final = res.Rounds[n-1].Wall
		for _, rr := range res.Rounds {
			peak = max(peak, rr.Wall)
		}
	}
	const grain = 100 * time.Microsecond
	// The final/peak ratio is the machine-checkable convergence verdict: a
	// run that recovered from its worst round ends well under 1.0, and CI
	// greps the plain number rather than parsing unit-suffixed durations.
	ratio := 1.0
	if peak > 0 {
		ratio = float64(final) / float64(peak)
	}
	fmt.Printf("adaptive: %d decision(s), %d applied (%d keeper rebalance(s)); round wall first %s, peak %s, final %s (final/peak %.2f)\n",
		len(all), applied, rebalances, first.Round(grain), peak.Round(grain), final.Round(grain), ratio)
	if verbose && len(all) > 0 {
		fmt.Print(adapt.RenderDecisions(all))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvdcsoak:", err)
		os.Exit(1)
	}
}
