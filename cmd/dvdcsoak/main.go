// Command dvdcsoak runs the seeded chaos soak against a live loopback
// cluster: N checkpoint rounds under injected frame corruption, connection
// drops, delays, transient partitions, and Poisson node kills, with the
// invariant battery of runtime.RunSoak checked after every round.
//
// Everything nondeterministic derives from -seed, so any failure this
// command reports is replayed exactly by rerunning with the printed seed
// (see EXPERIMENTS.md, "Reproducing a chaos failure by seed").
//
// Usage:
//
//	dvdcsoak -seed 424242                      # paper 4-node/12-VM layout
//	dvdcsoak -nodes 8 -rounds 20 -kill-mtbf 90
//	dvdcsoak -nodes 16 -group-size 4 -p-corrupt 0.02 -p-drop 0.02
//	dvdcsoak -chunk-faults 2 -chunk-size 256   # aim drop/corrupt at delta chunk frames
//	dvdcsoak -trace-jsonl soak.jsonl           # then: dvdcctl trace -in soak.jsonl
//	dvdcsoak -obs-addr 127.0.0.1:9100          # live /metrics during the soak
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dvdc/internal/chaos"
	"dvdc/internal/cluster"
	"dvdc/internal/obs"
	"dvdc/internal/runtime"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 4, "physical nodes")
		stacks    = flag.Int("stacks", 1, "RAID group stacks")
		tolerance = flag.Int("tolerance", 1, "parity blocks per group")
		groupSize = flag.Int("group-size", 0, "VMs per group (0 = nodes-tolerance, the paper's Fig. 4)")
		rounds    = flag.Int("rounds", 10, "checkpoint rounds")
		steps     = flag.Uint64("steps", 40, "workload steps per round")
		pages     = flag.Int("pages", 16, "pages per VM")
		pageSize  = flag.Int("page-size", 64, "bytes per page")
		seed      = flag.Int64("seed", 1, "master seed: workloads, chaos, kills, arm plan")
		pCorrupt  = flag.Float64("p-corrupt", 0.01, "per-frame corruption probability")
		pDrop     = flag.Float64("p-drop", 0.01, "per-frame connection-drop probability")
		pDelay    = flag.Float64("p-delay", 0.05, "per-frame delay probability")
		pPart     = flag.Float64("p-partition", 0.1, "per-round transient partition probability")
		armed     = flag.Int("arm-per-round", 2, "armed one-shot faults per round")
		chunkSize = flag.Int("chunk-size", 0, "data-path chunk size in bytes (0 = default chunked, -1 = monolithic)")
		chunkArms = flag.Int("chunk-faults", 0, "armed one-shot drop/corrupt faults per round aimed at delta chunk frames")
		killMTBF  = flag.Float64("kill-mtbf", 120, "per-node MTBF in virtual seconds (0 = no kills)")
		rpc       = flag.Duration("rpc-timeout", 5*time.Second, "per-call RPC deadline")
		verbose   = flag.Bool("v", false, "print the full fault log and per-round digest")
		traceOut  = flag.String("trace-jsonl", "", "stream every span to this JSONL file (render with dvdcctl trace)")
		obsAddr   = flag.String("obs-addr", "", "serve /metrics, /healthz, /spans and pprof here during the soak")
		pmDir     = flag.String("postmortem-dir", "", "dump a flight-recorder bundle here on invariant violation or SIGQUIT")
	)
	flag.Parse()

	gs := *groupSize
	if gs <= 0 {
		gs = *nodes - *tolerance
	}
	layout, err := cluster.BuildDistributedGroups(*nodes, *stacks, *tolerance, gs)
	fatal(err)

	cfg := runtime.SoakConfig{
		Layout:        layout,
		Rounds:        *rounds,
		StepsPerRound: *steps,
		Pages:         *pages,
		PageSize:      *pageSize,
		Seed:          *seed,
		Chaos:         chaos.Config{PCorrupt: *pCorrupt, PDrop: *pDrop, PDelay: *pDelay},
		ArmPerRound:   *armed,
		ChunkSize:     *chunkSize,
		ChunkFaults:   *chunkArms,
		PPartition:    *pPart,
		KillMTBF:      *killMTBF,
		RPCTimeout:    *rpc,
		Registry:      obs.NewRegistry(),
	}
	if *traceOut != "" || *obsAddr != "" {
		cfg.Tracer = obs.NewTracer(1 << 15)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		fatal(err)
		defer f.Close()
		cfg.TraceSink = f
	}
	if *obsAddr != "" {
		srv, err := obs.Serve(*obsAddr, cfg.Registry, cfg.Tracer)
		fatal(err)
		defer srv.Close()
		fmt.Printf("observability on http://%s/metrics\n", srv.Addr())
		// Bound address to stderr for scripts using -obs-addr 127.0.0.1:0.
		fmt.Fprintf(os.Stderr, "obs listening on %s\n", srv.Addr())
	}
	if *pmDir != "" {
		cfg.PostmortemDir = *pmDir
		cfg.Recorder = obs.NewFlightRecorder(0)
		// SIGQUIT = "explain yourself": dump the black box and keep soaking.
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			for range quit {
				if path, err := cfg.Recorder.Dump(*pmDir, "sigquit"); err != nil {
					fmt.Fprintf(os.Stderr, "dvdcsoak: postmortem dump: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "dvdcsoak: postmortem bundle %s\n", path)
				}
			}
		}()
	}

	fmt.Printf("dvdcsoak: %d nodes, %d VMs, %d rounds, seed %d\n",
		layout.Nodes, len(layout.VMs), cfg.Rounds, cfg.Seed)
	start := time.Now()
	res, err := runtime.RunSoak(cfg)
	elapsed := time.Since(start)

	if res != nil {
		if *verbose || err != nil {
			for _, line := range res.RoundDigest() {
				fmt.Println("  " + line)
			}
			fmt.Println("fault log:")
			for _, line := range res.FaultLogDigest() {
				fmt.Println("  " + line)
			}
		}
		fmt.Printf("faults: %v\n", res.Counters)
		fmt.Printf("final epoch %d across %d rounds, %d VMs verified, %.2fs wall\n",
			res.Epoch, len(res.Rounds), len(res.Checksums), elapsed.Seconds())
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvdcsoak: INVARIANT VIOLATION: %v\n", err)
		fmt.Fprintf(os.Stderr, "dvdcsoak: replay with -seed %d\n", *seed)
		if *pmDir != "" {
			if bundles, berr := obs.FindBundles(*pmDir); berr == nil && len(bundles) > 0 {
				fmt.Fprintf(os.Stderr, "dvdcsoak: postmortem: dvdcctl postmortem -bundle %s\n", bundles[len(bundles)-1])
			}
		}
		os.Exit(1)
	}
	if *traceOut != "" {
		fmt.Printf("spans written to %s; render with: dvdcctl trace -in %s\n", *traceOut, *traceOut)
	}
	fmt.Printf("all invariants held; replay with -seed %d\n", *seed)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvdcsoak:", err)
		os.Exit(1)
	}
}
