package main

import (
	"flag"
	"strconv"
	"testing"

	"dvdc/internal/runtime"
)

// TestFlagDefaultsMatchLibrary pins the satellite invariant that the CLI
// defaults and the library's defaulting function never drift: a user running
// `dvdcsoak` with no flags and a test calling runtime.RunSoak with a zero
// SoakConfig must get the same soak, because both paths resolve to the same
// runtime.DefaultSoak* constants.
func TestFlagDefaultsMatchLibrary(t *testing.T) {
	fs := flag.NewFlagSet("dvdcsoak", flag.ContinueOnError)
	registerFlags(fs)

	for name, want := range map[string]string{
		"rounds":      strconv.Itoa(runtime.DefaultSoakRounds),
		"steps":       strconv.FormatUint(runtime.DefaultSoakSteps, 10),
		"pages":       strconv.Itoa(runtime.DefaultSoakPages),
		"page-size":   strconv.Itoa(runtime.DefaultSoakPageSize),
		"rpc-timeout": runtime.DefaultSoakRPCTimeout.String(),
	} {
		f := fs.Lookup(name)
		if f == nil {
			t.Fatalf("flag -%s not registered", name)
		}
		if f.DefValue != want {
			t.Errorf("-%s default = %s, want library default %s", name, f.DefValue, want)
		}
	}

	// Shared flags must exist under their canonical spellings.
	for _, name := range []string{"obs-addr", "trace-jsonl", "postmortem-dir", "service", "adaptive"} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}

	// -adaptive must default off: the advisor mutates placement and tuning,
	// which a reproduction run must opt into.
	if f := fs.Lookup("adaptive"); f != nil && f.DefValue != "false" {
		t.Errorf("-adaptive default = %s, want false", f.DefValue)
	}
}
