package main

import (
	"encoding/json"
	"fmt"
	"os"
	goruntime "runtime"
	"time"

	"dvdc/internal/cluster"
	"dvdc/internal/runtime"
)

// The -datapath mode compares the monolithic and chunked checkpoint data
// paths on a live loopback cluster and records the result as
// BENCH_datapath.json — the acceptance artifact for the chunked pipeline.
// Each mode runs the same seeded workload for the same number of rounds;
// heap pressure is measured as the process-wide MemStats delta around the
// timed rounds (client and keepers share the process, so the delta covers
// the full path, exactly like `go test -benchmem` over BenchmarkDataPath).

// datapathCase is one measured configuration of the data path.
type datapathCase struct {
	Mode          string  `json:"mode"`
	ChunkSize     int     `json:"chunk_size"` // -1 monolithic, 0 default chunked, >0 bytes
	Rounds        int     `json:"rounds"`
	WallSeconds   float64 `json:"wall_seconds"`
	BytesShipped  int64   `json:"bytes_shipped"`
	ChunksShipped int64   `json:"chunks_shipped"`
	ShippedMBPerS float64 `json:"shipped_mb_per_s"`
	AllocBytes    uint64  `json:"alloc_bytes_total"`
	AllocObjects  uint64  `json:"alloc_objects_total"`
	BytesPerRound uint64  `json:"alloc_bytes_per_round"`
}

// datapathReport is the BENCH_datapath.json schema.
type datapathReport struct {
	Generator     string         `json:"generator"`
	Layout        string         `json:"layout"`
	Pages         int            `json:"pages_per_vm"`
	PageSize      int            `json:"page_size"`
	StepsPerRound uint64         `json:"steps_per_round"`
	Seed          int64          `json:"seed"`
	Cases         []datapathCase `json:"cases"`

	// Acceptance headline: monolithic over default-chunked ratios (>1 means
	// the chunked path wins).
	AllocBytesRatio float64 `json:"alloc_bytes_ratio_mono_over_chunked"`
	ThroughputRatio float64 `json:"throughput_ratio_chunked_over_mono"`
}

// runDatapath executes the comparison and writes the JSON artifact.
func runDatapath(rounds int, seed int64, outPath string) error {
	const (
		pages    = 256
		pageSize = 4096
		steps    = 120
	)
	cases := []struct {
		mode  string
		chunk int
	}{
		{"monolithic", -1},
		{"chunked-64KiB", 0}, // wire.DefaultChunkSize, the shipping default
		{"chunked-256KiB", 256 << 10},
	}
	rep := datapathReport{
		Generator:     "dvdcbench -datapath",
		Layout:        "paper 4-node / 12-VM (Fig. 5)",
		Pages:         pages,
		PageSize:      pageSize,
		StepsPerRound: steps,
		Seed:          seed,
	}
	for _, tc := range cases {
		res, err := measureDatapath(tc.mode, tc.chunk, rounds, pages, pageSize, steps, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", tc.mode, err)
		}
		rep.Cases = append(rep.Cases, res)
		fmt.Printf("%-16s %6.1f ms/round  %7.1f shipped MB/s  %8.2f MB alloc/round  %d chunks\n",
			res.Mode, res.WallSeconds/float64(rounds)*1e3, res.ShippedMBPerS,
			float64(res.BytesPerRound)/1e6, res.ChunksShipped)
	}
	mono, chunked := rep.Cases[0], rep.Cases[1]
	if chunked.BytesPerRound > 0 {
		rep.AllocBytesRatio = float64(mono.BytesPerRound) / float64(chunked.BytesPerRound)
	}
	if mono.ShippedMBPerS > 0 {
		rep.ThroughputRatio = chunked.ShippedMBPerS / mono.ShippedMBPerS
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("mono/chunked alloc bytes per round: %.2fx; chunked/mono throughput: %.2fx\n",
		rep.AllocBytesRatio, rep.ThroughputRatio)
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// measureDatapath runs one configuration: a fresh loopback cluster, two
// warm-up rounds (connection pools, buffer pools, page caches), then the
// timed rounds bracketed by GC-settled MemStats reads.
func measureDatapath(mode string, chunkSize, rounds, pages, pageSize int, steps uint64, seed int64) (datapathCase, error) {
	fail := func(err error) (datapathCase, error) { return datapathCase{}, err }
	layout, err := cluster.Paper12VM()
	if err != nil {
		return fail(err)
	}
	nodes := make([]*runtime.Node, layout.Nodes)
	addrs := map[int]string{}
	for i := range nodes {
		n, err := runtime.NewNode("127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		defer n.Close()
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	coord, err := runtime.NewCoordinator(layout, addrs, pages, pageSize, seed)
	if err != nil {
		return fail(err)
	}
	defer coord.Close()
	coord.SetChunkSize(chunkSize)
	if err := coord.Setup(); err != nil {
		return fail(err)
	}
	round := func() error {
		if err := coord.Step(steps); err != nil {
			return err
		}
		return coord.Checkpoint()
	}
	for i := 0; i < 2; i++ {
		if err := round(); err != nil {
			return fail(err)
		}
	}

	var before, after goruntime.MemStats
	goruntime.GC()
	goruntime.ReadMemStats(&before)
	var shipped, chunks int64
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if err := round(); err != nil {
			return fail(err)
		}
		st := coord.RoundStats()
		shipped += st.BytesShipped
		chunks += st.ChunksShipped
	}
	wall := time.Since(start)
	goruntime.ReadMemStats(&after)

	return datapathCase{
		Mode:          mode,
		ChunkSize:     chunkSize,
		Rounds:        rounds,
		WallSeconds:   wall.Seconds(),
		BytesShipped:  shipped,
		ChunksShipped: chunks,
		ShippedMBPerS: float64(shipped) / 1e6 / wall.Seconds(),
		AllocBytes:    after.TotalAlloc - before.TotalAlloc,
		AllocObjects:  after.Mallocs - before.Mallocs,
		BytesPerRound: (after.TotalAlloc - before.TotalAlloc) / uint64(rounds),
	}, nil
}
