package main

import (
	"encoding/json"
	"fmt"
	"os"
	goruntime "runtime"
	"strings"
	"time"

	"dvdc/internal/cluster"
	"dvdc/internal/runtime"
)

// The -datapath mode compares the monolithic and chunked checkpoint data
// paths on live loopback clusters and records the result as
// BENCH_datapath.json — the acceptance artifact for the chunked pipeline.
// It doubles as the CI perf gate: the run fails (nonzero exit) unless the
// default chunked path ships at least monolithic throughput on at most 1/3
// of its allocated bytes per round, and the page-dedup cache cuts
// repeated-epoch shipped bytes by at least half on the rewrite workload.
//
// All cases run the same seeded workload. To keep the throughput comparison
// honest on a noisy host, the cases are interleaved: every trial runs a
// block of rounds of each case back to back, so slow drift (CPU frequency,
// noisy neighbors) hits all cases alike instead of whichever ran last. Each
// block gets a fresh cluster that is torn down before the next — exactly one
// cluster is ever alive, so every case sees the same small live heap (GC
// mark assists scale with live bytes, and would otherwise tax the
// allocation-heavy monolithic path for the other clusters' memory). Heap
// pressure is the process-wide MemStats delta bracketing each case's blocks
// (client and keepers share the process, so the delta covers the full path).

// datapathCase is one measured configuration of the data path.
type datapathCase struct {
	Mode          string  `json:"mode"`
	ChunkSize     int     `json:"chunk_size"` // -1 monolithic, 0 default chunked, >0 bytes
	Workload      string  `json:"workload,omitempty"`
	Dedup         bool    `json:"dedup,omitempty"`
	Rounds        int     `json:"rounds"`
	WallSeconds   float64 `json:"wall_seconds"`
	BytesShipped  int64   `json:"bytes_shipped"`
	ChunksShipped int64   `json:"chunks_shipped"`
	DedupedPages  int64   `json:"deduped_pages,omitempty"`
	ShippedMBPerS float64 `json:"shipped_mb_per_s"`
	AllocBytes    uint64  `json:"alloc_bytes_total"`
	AllocObjects  uint64  `json:"alloc_objects_total"`
	BytesPerRound uint64  `json:"alloc_bytes_per_round"`
}

// saturationPoint is one rung of the concurrency ladder: w independent
// chunked clusters checkpointing flat out over loopback at once.
type saturationPoint struct {
	Workers         int     `json:"workers"`
	AggregateMBPerS float64 `json:"aggregate_mb_per_s"`
	PerWorkerMBPerS float64 `json:"per_worker_mb_per_s"`
	Scaling         float64 `json:"scaling_vs_single"` // aggregate / (workers * single-worker)
}

// datapathReport is the BENCH_datapath.json schema.
type datapathReport struct {
	Generator     string         `json:"generator"`
	Layout        string         `json:"layout"`
	Pages         int            `json:"pages_per_vm"`
	PageSize      int            `json:"page_size"`
	StepsPerRound uint64         `json:"steps_per_round"`
	Seed          int64          `json:"seed"`
	Trials        int            `json:"interleaved_trials"`
	Cases         []datapathCase `json:"cases"`

	// Acceptance headlines. AllocBytesRatio and ThroughputRatio compare
	// monolithic to the default chunked case (>1 means chunked wins);
	// DedupShippedDrop is the fraction of repeated-epoch bytes the page-hash
	// cache kept off the wire under the rewrite workload.
	AllocBytesRatio  float64 `json:"alloc_bytes_ratio_mono_over_chunked"`
	ThroughputRatio  float64 `json:"throughput_ratio_chunked_over_mono"`
	DedupShippedDrop float64 `json:"dedup_repeat_epoch_shipped_drop"`

	// Saturation is empty and SaturationNote set when the host cannot run the
	// ladder meaningfully (GOMAXPROCS=1: the rungs would interleave on one
	// core and the scaling column would measure the scheduler, not the data
	// path).
	Saturation     []saturationPoint `json:"saturation,omitempty"`
	SaturationNote string            `json:"saturation_note,omitempty"`

	GatePassed bool     `json:"gate_passed"`
	GateChecks []string `json:"gate_checks"`
}

// dpSpec names one configuration to measure.
type dpSpec struct {
	mode     string
	chunk    int
	workload string
	dedup    bool
}

// dpCluster is a live loopback cluster plus its per-case accumulators.
type dpCluster struct {
	spec    dpSpec
	nodes   []*runtime.Node
	coord   *runtime.Coordinator
	steps   uint64
	wall    time.Duration
	shipped int64
	chunks  int64
	deduped int64
	alloc   uint64
	objects uint64
	rounds  int
}

func newDPCluster(spec dpSpec, pages, pageSize int, steps uint64, seed int64) (*dpCluster, error) {
	layout, err := cluster.Paper12VM()
	if err != nil {
		return nil, err
	}
	d := &dpCluster{spec: spec, steps: steps}
	addrs := map[int]string{}
	for i := 0; i < layout.Nodes; i++ {
		n, err := runtime.NewNode("127.0.0.1:0")
		if err != nil {
			d.close()
			return nil, err
		}
		d.nodes = append(d.nodes, n)
		addrs[i] = n.Addr()
	}
	coord, err := runtime.NewCoordinator(layout, addrs, pages, pageSize, seed)
	if err != nil {
		d.close()
		return nil, err
	}
	d.coord = coord
	coord.SetChunkSize(spec.chunk)
	coord.SetWorkload(spec.workload)
	coord.SetDedup(spec.dedup)
	if err := coord.Setup(); err != nil {
		d.close()
		return nil, err
	}
	return d, nil
}

func (d *dpCluster) close() {
	if d.coord != nil {
		d.coord.Close()
	}
	for _, n := range d.nodes {
		n.Close()
	}
}

// round runs one step+checkpoint round without touching the accumulators.
func (d *dpCluster) round() error {
	if err := d.coord.Step(d.steps); err != nil {
		return err
	}
	return d.coord.Checkpoint()
}

// block runs rounds timed rounds, charging wall clock, shipped bytes, and the
// process-wide allocation delta to this case.
func (d *dpCluster) block(rounds int) error {
	var before, after goruntime.MemStats
	goruntime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if err := d.round(); err != nil {
			return err
		}
		st := d.coord.RoundStats()
		d.shipped += st.BytesShipped
		d.chunks += st.ChunksShipped
		d.deduped += st.DedupedPages
	}
	d.wall += time.Since(start)
	goruntime.ReadMemStats(&after)
	d.alloc += after.TotalAlloc - before.TotalAlloc
	d.objects += after.Mallocs - before.Mallocs
	d.rounds += rounds
	return nil
}

// dpAgg accumulates a case's measurements across its per-trial clusters.
type dpAgg struct {
	spec    dpSpec
	wall    time.Duration
	shipped int64
	chunks  int64
	deduped int64
	alloc   uint64
	objects uint64
	rounds  int
}

func (a *dpAgg) add(d *dpCluster) {
	a.wall += d.wall
	a.shipped += d.shipped
	a.chunks += d.chunks
	a.deduped += d.deduped
	a.alloc += d.alloc
	a.objects += d.objects
	a.rounds += d.rounds
}

func (a *dpAgg) result() datapathCase {
	out := datapathCase{
		Mode:          a.spec.mode,
		ChunkSize:     a.spec.chunk,
		Workload:      a.spec.workload,
		Dedup:         a.spec.dedup,
		Rounds:        a.rounds,
		WallSeconds:   a.wall.Seconds(),
		BytesShipped:  a.shipped,
		ChunksShipped: a.chunks,
		DedupedPages:  a.deduped,
		AllocBytes:    a.alloc,
		AllocObjects:  a.objects,
	}
	if a.wall > 0 {
		out.ShippedMBPerS = float64(a.shipped) / 1e6 / a.wall.Seconds()
	}
	if a.rounds > 0 {
		out.BytesPerRound = a.alloc / uint64(a.rounds)
	}
	return out
}

// runDatapath executes the comparison, the saturation ladder, and the gate,
// then writes the JSON artifact. A failed gate is returned as an error after
// the artifact is written, so the numbers that failed are always on disk.
func runDatapath(rounds int, seed int64, outPath string) error {
	const (
		pages    = 256
		pageSize = 4096
		steps    = 120
		trials   = 5
	)
	specs := []dpSpec{
		{mode: "monolithic", chunk: -1},
		{mode: "chunked-64KiB", chunk: 0}, // wire.DefaultChunkSize, the shipping default
		{mode: "chunked-256KiB", chunk: 256 << 10},
		{mode: "rewrite-nodedup", chunk: 0, workload: runtime.WorkloadRewrite},
		{mode: "rewrite-dedup", chunk: 0, workload: runtime.WorkloadRewrite, dedup: true},
	}
	perTrial := rounds / trials
	if perTrial < 1 {
		perTrial = 1
	}
	aggs := make([]*dpAgg, len(specs))
	for i, spec := range specs {
		aggs[i] = &dpAgg{spec: spec}
	}
	for t := 0; t < trials; t++ {
		// Rotate the case order every trial so systematic drift within a
		// trial (cache warmth, background load ramps) does not always land
		// on the same case.
		for k := 0; k < len(specs); k++ {
			i := (k + t) % len(specs)
			spec := specs[i]
			d, err := newDPCluster(spec, pages, pageSize, steps, seed)
			if err != nil {
				return fmt.Errorf("%s: %w", spec.mode, err)
			}
			// Warm-up: connection pools, buffer pools, page caches — and for
			// the dedup case the page-hash cache, so every timed round is a
			// repeated epoch.
			for k := 0; k < 2; k++ {
				if err := d.round(); err != nil {
					d.close()
					return fmt.Errorf("%s: warm-up: %w", spec.mode, err)
				}
			}
			goruntime.GC()
			err = d.block(perTrial)
			aggs[i].add(d)
			d.close()
			if err != nil {
				return fmt.Errorf("%s: %w", spec.mode, err)
			}
		}
	}

	rep := datapathReport{
		Generator:     "dvdcbench -datapath",
		Layout:        "paper 4-node / 12-VM (Fig. 5)",
		Pages:         pages,
		PageSize:      pageSize,
		StepsPerRound: steps,
		Seed:          seed,
		Trials:        trials,
	}
	byMode := map[string]datapathCase{}
	for _, a := range aggs {
		res := a.result()
		rep.Cases = append(rep.Cases, res)
		byMode[res.Mode] = res
		fmt.Printf("%-16s %6.1f ms/round  %7.1f shipped MB/s  %8.2f MB alloc/round  %d chunks  %d pages deduped\n",
			res.Mode, res.WallSeconds/float64(res.Rounds)*1e3, res.ShippedMBPerS,
			float64(res.BytesPerRound)/1e6, res.ChunksShipped, res.DedupedPages)
	}

	mono, chunked := byMode["monolithic"], byMode["chunked-64KiB"]
	plain, dedup := byMode["rewrite-nodedup"], byMode["rewrite-dedup"]
	if chunked.BytesPerRound > 0 {
		rep.AllocBytesRatio = float64(mono.BytesPerRound) / float64(chunked.BytesPerRound)
	}
	if mono.ShippedMBPerS > 0 {
		rep.ThroughputRatio = chunked.ShippedMBPerS / mono.ShippedMBPerS
	}
	if plain.BytesShipped > 0 {
		rep.DedupShippedDrop = 1 - float64(dedup.BytesShipped)/float64(plain.BytesShipped)
	}

	var sat []saturationPoint
	if goruntime.GOMAXPROCS(0) == 1 {
		rep.SaturationNote = "skipped: GOMAXPROCS=1 — parallel rungs would interleave on one core, measuring the scheduler rather than the data path"
	} else {
		var err error
		sat, err = runSaturation(pages, pageSize, steps, seed)
		if err != nil {
			return fmt.Errorf("saturation: %w", err)
		}
		rep.Saturation = sat
	}

	// The gate. Every check is recorded in the artifact, pass or fail.
	var failures []string
	check := func(ok bool, format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		if ok {
			rep.GateChecks = append(rep.GateChecks, "PASS: "+line)
		} else {
			rep.GateChecks = append(rep.GateChecks, "FAIL: "+line)
			failures = append(failures, line)
		}
	}
	check(chunked.ShippedMBPerS >= mono.ShippedMBPerS,
		"chunked throughput %.1f MB/s >= monolithic %.1f MB/s",
		chunked.ShippedMBPerS, mono.ShippedMBPerS)
	check(chunked.BytesPerRound*3 <= mono.BytesPerRound,
		"chunked alloc %.2f MB/round <= 1/3 of monolithic %.2f MB/round",
		float64(chunked.BytesPerRound)/1e6, float64(mono.BytesPerRound)/1e6)
	check(rep.DedupShippedDrop >= 0.5,
		"dedup cuts repeated-epoch shipped bytes by %.0f%% (>= 50%%)",
		rep.DedupShippedDrop*100)
	rep.GatePassed = len(failures) == 0

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	for _, p := range sat {
		fmt.Printf("saturation %2d workers: %7.1f MB/s aggregate  %6.1f MB/s per worker  %.2fx scaling\n",
			p.Workers, p.AggregateMBPerS, p.PerWorkerMBPerS, p.Scaling)
	}
	if rep.SaturationNote != "" {
		fmt.Printf("saturation ladder %s\n", rep.SaturationNote)
	}
	fmt.Printf("mono/chunked alloc bytes per round: %.2fx; chunked/mono throughput: %.2fx; dedup shipped-byte drop: %.0f%%\n",
		rep.AllocBytesRatio, rep.ThroughputRatio, rep.DedupShippedDrop*100)
	fmt.Printf("wrote %s\n", outPath)
	if len(failures) > 0 {
		return fmt.Errorf("perf gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Println("perf gate passed")
	return nil
}

// runSaturation climbs a concurrency ladder — 1, 2, 4, ... independent
// chunked clusters checkpointing simultaneously — until aggregate loopback
// throughput stops improving (under 5% over the previous rung) or the rung
// would exceed the host's cores. The knee is where loopback (or the CPU
// feeding it) becomes the limit; per-worker throughput past it shows how
// gracefully the data path degrades under contention.
func runSaturation(pages, pageSize int, steps uint64, seed int64) ([]saturationPoint, error) {
	const satRounds = 8
	maxWorkers := goruntime.NumCPU()
	if maxWorkers > 8 {
		maxWorkers = 8
	}
	var points []saturationPoint
	prev := 0.0
	for w := 1; w <= maxWorkers; w *= 2 {
		clusters := make([]*dpCluster, w)
		for i := range clusters {
			d, err := newDPCluster(dpSpec{mode: "sat", chunk: 0}, pages, pageSize, steps, seed+int64(i))
			if err != nil {
				return nil, err
			}
			defer d.close()
			clusters[i] = d
			if err := d.round(); err != nil {
				return nil, err
			}
		}
		errs := make(chan error, w)
		start := time.Now()
		for _, d := range clusters {
			go func(d *dpCluster) {
				var err error
				for i := 0; i < satRounds && err == nil; i++ {
					if err = d.round(); err == nil {
						d.shipped += d.coord.RoundStats().BytesShipped
					}
				}
				errs <- err
			}(d)
		}
		for range clusters {
			if err := <-errs; err != nil {
				return nil, err
			}
		}
		wall := time.Since(start).Seconds()
		var shipped int64
		for _, d := range clusters {
			shipped += d.shipped
			d.close()
		}
		agg := float64(shipped) / 1e6 / wall
		p := saturationPoint{
			Workers:         w,
			AggregateMBPerS: agg,
			PerWorkerMBPerS: agg / float64(w),
		}
		if len(points) == 0 {
			p.Scaling = 1
		} else {
			p.Scaling = agg / (float64(w) * points[0].AggregateMBPerS)
		}
		points = append(points, p)
		if prev > 0 && agg < prev*1.05 {
			break // loopback is the limit; the ladder has flattened
		}
		prev = agg
	}
	return points, nil
}
