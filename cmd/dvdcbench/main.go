// Command dvdcbench regenerates the paper's evaluation artifacts. Each
// experiment prints its tables and ASCII figures; -csv additionally dumps
// the raw series.
//
// Usage:
//
//	dvdcbench -list
//	dvdcbench -exp E1
//	dvdcbench -exp all -mtbf 10800 -job 172800
//	dvdcbench -datapath            # monolithic vs chunked live rounds -> BENCH_datapath.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"time"

	"dvdc/internal/cli"
	"dvdc/internal/experiments"
	"dvdc/internal/metrics"
	"dvdc/internal/obs"
	"dvdc/internal/report"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id (E1..E12) or 'all'")
		list   = flag.Bool("list", false, "list experiments and exit")
		csv    = flag.Bool("csv", false, "also print raw series as CSV")
		outDir = flag.String("out", "", "also write each artifact (and its CSV) into this directory")
		mtbf   = flag.Float64("mtbf", 3*3600, "system MTBF in seconds (paper: 3 h)")
		job    = flag.Float64("job", 2*24*3600, "fault-free job length in seconds (paper: 2 days)")
		nodes  = flag.Int("nodes", 4, "physical nodes (paper: 4)")
		stacks = flag.Int("stacks", 1, "RAID group stacks (VMs/node = stacks*(nodes-1))")
		image  = flag.Int64("image", 2<<30, "VM image bytes (default 2 GiB)")
		wss    = flag.Float64("wss", 32*(1<<20), "dirty working-set bytes (default 32 MiB)")
		rate   = flag.Float64("rate", 4*(1<<20), "guest write rate bytes/s (default 4 MiB/s)")
		seed   = flag.Int64("seed", 20120521, "random seed")
		runs   = flag.Int("runs", 60, "Monte-Carlo repetitions")
		points = flag.Int("points", 120, "sweep points for figures")

		datapath   = flag.Bool("datapath", false, "run the monolithic-vs-chunked data-path comparison on a live cluster and exit")
		dpRounds   = flag.Int("datapath-rounds", 20, "timed checkpoint rounds per data-path case")
		dpJSONPath = flag.String("datapath-json", "BENCH_datapath.json", "where -datapath writes its JSON artifact")

		obsBench    = flag.Bool("obs", false, "run the telemetry-plane overhead comparison on a live cluster and exit")
		obRounds    = flag.Int("obs-rounds", 20, "timed checkpoint rounds per telemetry case")
		obsJSONPath = flag.String("obs-json", "BENCH_obs.json", "where -obs writes its JSON artifact")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the whole run here")
	)
	var common cli.Common
	common.ObsAddrFlag(flag.CommandLine)
	flag.Parse()

	if *cpuProfile != "" {
		pf, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvdcbench: %v\n", err)
			os.Exit(1)
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			fmt.Fprintf(os.Stderr, "dvdcbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *datapath {
		if err := runDatapath(*dpRounds, *seed, *dpJSONPath); err != nil {
			fmt.Fprintf(os.Stderr, "dvdcbench: datapath: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *obsBench {
		if err := runObsBench(*obRounds, *seed, *obsJSONPath); err != nil {
			fmt.Fprintf(os.Stderr, "dvdcbench: obs: %v\n", err)
			os.Exit(1)
		}
		return
	}

	reg := obs.NewRegistry()
	srv, err := common.ServeObs("dvdcbench", reg, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvdcbench: %v\n", err)
		os.Exit(1)
	}
	if srv != nil {
		defer srv.Close()
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-4s %s\n", id, experiments.Title(id))
		}
		return
	}
	p := experiments.Default()
	p.MTBF = *mtbf
	p.Job = *job
	p.Nodes = *nodes
	p.Stacks = *stacks
	p.ImageBytes = *image
	p.WSSBytes = *wss
	p.WriteRate = *rate
	p.Seed = *seed
	p.MCRuns = *runs
	p.SweepPoints = *points

	ids := []string{*exp}
	if strings.EqualFold(*exp, "all") {
		ids = experiments.IDs()
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "dvdcbench: %v\n", err)
			os.Exit(1)
		}
	}
	for _, id := range ids {
		expStart := time.Now()
		res, err := experiments.Run(id, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvdcbench: %v\n", err)
			os.Exit(1)
		}
		reg.Histogram("dvdc_experiment_seconds", obs.LatencyBuckets(), "id", res.ID).
			Observe(time.Since(expStart).Seconds())
		header := fmt.Sprintf("==== %s: %s ====\n\n", res.ID, res.Title)
		fmt.Printf("%s%s\n", header, res.Text)
		if *csv && len(res.Series) > 0 {
			fmt.Println("-- CSV --")
			fmt.Println(metrics.CSV("x", res.Series...))
		}
		if *outDir != "" {
			base := filepath.Join(*outDir, strings.ToLower(res.ID))
			if err := os.WriteFile(base+".txt", []byte(header+res.Text), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "dvdcbench: %v\n", err)
				os.Exit(1)
			}
			if len(res.Series) > 0 {
				if err := os.WriteFile(base+".csv", []byte(metrics.CSV("x", res.Series...)), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "dvdcbench: %v\n", err)
					os.Exit(1)
				}
				f, err := os.Create(base + ".png")
				if err != nil {
					fmt.Fprintf(os.Stderr, "dvdcbench: %v\n", err)
					os.Exit(1)
				}
				chart := report.Chart{Title: res.Title, LogX: id == "E1", LogY: id == "E1"}
				if perr := chart.WritePNGWithMinima(f, res.Series...); perr != nil {
					fmt.Fprintf(os.Stderr, "dvdcbench: render %s: %v\n", id, perr)
				}
				f.Close()
			}
		}
	}
}
