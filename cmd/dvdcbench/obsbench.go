package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	goruntime "runtime"
	"time"

	"dvdc/internal/cluster"
	"dvdc/internal/obs"
	"dvdc/internal/obs/collect"
	"dvdc/internal/runtime"
)

// The -obs mode measures what the telemetry plane costs: the same seeded
// checkpoint workload with observability off versus fully on (tracer with
// JSONL sink, metrics registry, flight recorder tap, and a per-round
// collector pass building and verifying the merged round tree). The
// acceptance bar is that the fully instrumented rounds stay within a few
// percent of dark rounds — telemetry that distorts what it measures names
// the wrong straggler.

// obsCase is one measured configuration of the telemetry plane.
type obsCase struct {
	Mode          string  `json:"mode"`
	Rounds        int     `json:"rounds"`
	WallSeconds   float64 `json:"wall_seconds"`
	MSPerRound    float64 `json:"ms_per_round"`
	BytesShipped  int64   `json:"bytes_shipped"`
	SpansRecorded int     `json:"spans_recorded"`
	AllocBytes    uint64  `json:"alloc_bytes_total"`
	BytesPerRound uint64  `json:"alloc_bytes_per_round"`
}

// obsReport is the BENCH_obs.json schema.
type obsReport struct {
	Generator     string    `json:"generator"`
	Layout        string    `json:"layout"`
	Pages         int       `json:"pages_per_vm"`
	PageSize      int       `json:"page_size"`
	StepsPerRound uint64    `json:"steps_per_round"`
	Seed          int64     `json:"seed"`
	Cases         []obsCase `json:"cases"`

	// Acceptance headline: round-time overhead of full telemetry over dark,
	// in percent (the issue's bar is <= 5%).
	OverheadPercent float64 `json:"overhead_percent"`
}

// runObsBench executes the comparison and writes the JSON artifact.
func runObsBench(rounds int, seed int64, outPath string) error {
	const (
		pages    = 256
		pageSize = 4096
		steps    = 120
	)
	rep := obsReport{
		Generator:     "dvdcbench -obs",
		Layout:        "paper 4-node / 12-VM (Fig. 5)",
		Pages:         pages,
		PageSize:      pageSize,
		StepsPerRound: steps,
		Seed:          seed,
	}
	for _, mode := range []string{"obs-off", "obs-full"} {
		res, err := measureObs(mode, rounds, pages, pageSize, steps, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", mode, err)
		}
		rep.Cases = append(rep.Cases, res)
		fmt.Printf("%-10s %6.1f ms/round  %8.2f MB alloc/round  %d spans\n",
			res.Mode, res.MSPerRound, float64(res.BytesPerRound)/1e6, res.SpansRecorded)
	}
	dark, full := rep.Cases[0], rep.Cases[1]
	if dark.WallSeconds > 0 {
		rep.OverheadPercent = (full.WallSeconds/dark.WallSeconds - 1) * 100
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("full-telemetry round-time overhead: %+.2f%%\n", rep.OverheadPercent)
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// measureObs runs one configuration: a fresh loopback cluster, two warm-up
// rounds, then the timed rounds bracketed by GC-settled MemStats reads. In
// obs-full mode every layer of the telemetry plane is live: tracer with a
// discarding JSONL sink on coordinator and nodes, registry, flight-recorder
// taps on pools and tracer, and a collector pass per round that builds,
// verifies, and attributes the merged round tree.
func measureObs(mode string, rounds, pages, pageSize int, steps uint64, seed int64) (obsCase, error) {
	fail := func(err error) (obsCase, error) { return obsCase{}, err }
	full := mode == "obs-full"
	layout, err := cluster.Paper12VM()
	if err != nil {
		return fail(err)
	}

	var (
		tr  *obs.Tracer
		reg *obs.Registry
		rec *obs.FlightRecorder
	)
	var nopts runtime.NodeOptions
	if full {
		tr = obs.NewTracer(1 << 15)
		tr.SetSink(io.Discard)
		reg = obs.NewRegistry()
		rec = obs.NewFlightRecorder(0)
		rec.SetRegistry(reg)
		tr.SetTap(rec.Span)
		nopts = runtime.NodeOptions{Tracer: tr, Registry: reg, Recorder: rec}
	}
	nodes := make([]*runtime.Node, layout.Nodes)
	addrs := map[int]string{}
	for i := range nodes {
		n, err := runtime.NewNodeWith("127.0.0.1:0", nopts)
		if err != nil {
			return fail(err)
		}
		defer n.Close()
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	coord, err := runtime.NewCoordinator(layout, addrs, pages, pageSize, seed)
	if err != nil {
		return fail(err)
	}
	defer coord.Close()
	if full {
		coord.SetObserver(tr, reg)
		coord.SetFlightRecorder(rec)
	}
	if err := coord.Setup(); err != nil {
		return fail(err)
	}
	spans := 0
	round := func() error {
		if err := coord.Step(steps); err != nil {
			return err
		}
		if err := coord.Checkpoint(); err != nil {
			return err
		}
		if full {
			// The collector pass the telemetry plane adds per round: merge the
			// round's spans, verify the tree, and attribute the straggler.
			tree := collect.BuildTree(tr.TraceSpans(coord.RoundStats().TraceID))
			if err := tree.Verify(); err != nil {
				return err
			}
			collect.Attribute(tree).Export(reg)
			spans += len(tree.Spans)
		}
		return nil
	}
	for i := 0; i < 2; i++ {
		if err := round(); err != nil {
			return fail(err)
		}
	}

	var before, after goruntime.MemStats
	goruntime.GC()
	goruntime.ReadMemStats(&before)
	var shipped int64
	spans = 0
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if err := round(); err != nil {
			return fail(err)
		}
		shipped += coord.RoundStats().BytesShipped
	}
	wall := time.Since(start)
	goruntime.ReadMemStats(&after)

	return obsCase{
		Mode:          mode,
		Rounds:        rounds,
		WallSeconds:   wall.Seconds(),
		MSPerRound:    wall.Seconds() / float64(rounds) * 1e3,
		BytesShipped:  shipped,
		SpansRecorded: spans,
		AllocBytes:    after.TotalAlloc - before.TotalAlloc,
		BytesPerRound: (after.TotalAlloc - before.TotalAlloc) / uint64(rounds),
	}, nil
}
