package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	goruntime "runtime"
	"sort"
	"time"

	"dvdc/internal/cluster"
	"dvdc/internal/obs"
	"dvdc/internal/obs/collect"
	"dvdc/internal/obs/health"
	"dvdc/internal/runtime"
)

// The -obs mode measures what the telemetry plane costs: the same seeded
// checkpoint workload with observability off, fully on (tracer with JSONL
// sink, metrics registry, flight recorder tap, and a per-round collector pass
// building and verifying the merged round tree), and fully on plus the SLO
// health engine evaluating the default rule set once per round. The
// acceptance bar is that the fully instrumented rounds stay within a few
// percent of dark rounds — telemetry that distorts what it measures names
// the wrong straggler.

// obsCase is one measured configuration of the telemetry plane.
type obsCase struct {
	Mode          string  `json:"mode"`
	Rounds        int     `json:"rounds"`
	WallSeconds   float64 `json:"wall_seconds"`
	MSPerRound    float64 `json:"ms_per_round"`
	MSPerRoundMed float64 `json:"ms_per_round_median"`
	BytesShipped  int64   `json:"bytes_shipped"`
	SpansRecorded int     `json:"spans_recorded"`
	AllocBytes    uint64  `json:"alloc_bytes_total"`
	BytesPerRound uint64  `json:"alloc_bytes_per_round"`

	roundTimes []float64 // per-round wall seconds, for cross-try pooling
}

// obsReport is the BENCH_obs.json schema.
type obsReport struct {
	Generator     string    `json:"generator"`
	Layout        string    `json:"layout"`
	Pages         int       `json:"pages_per_vm"`
	PageSize      int       `json:"page_size"`
	StepsPerRound uint64    `json:"steps_per_round"`
	Seed          int64     `json:"seed"`
	Cases         []obsCase `json:"cases"`

	// Acceptance headlines, each a ratio of per-mode median round times.
	// OverheadPercent is full telemetry over dark rounds — the whole plane's
	// cost. HealthOverheadPercent is obs-health over obs-full: the marginal
	// cost of the SLO engine on top of the already-instrumented rounds, which
	// is the number the health engine's <= 5% bar is judged on (the engine is
	// one Tick of windowed quantiles and burn ratios per round; see
	// BenchmarkTickDefaultRules for the microbenchmark, ~30 us against a
	// 200-series registry).
	OverheadPercent       float64 `json:"overhead_percent"`
	HealthOverheadPercent float64 `json:"health_overhead_percent"`
}

// runObsBench executes the comparison and writes the JSON artifact.
func runObsBench(rounds int, seed int64, outPath string) error {
	const (
		pages    = 256
		pageSize = 4096
		steps    = 120
	)
	rep := obsReport{
		Generator:     "dvdcbench -obs",
		Layout:        "paper 4-node / 12-VM (Fig. 5)",
		Pages:         pages,
		PageSize:      pageSize,
		StepsPerRound: steps,
		Seed:          seed,
	}
	// Many short interleaved batches, per-round timing, per-mode median:
	// scheduler noise on a small (often single-vCPU) CI machine comes in
	// multi-second bursts that dwarf the telemetry cost itself, so any
	// single batch wall — or any single back-to-back ratio — compares
	// weather, not telemetry. Short batches spread each mode's rounds
	// across many time slots, so a burst degrades all three modes' pools
	// alike; each round is timed individually (a hundred-plus ~15 ms
	// samples per mode) and the median round time per mode is burst-immune
	// while still including typical GC activity. The headline overheads are
	// ratios of medians.
	const tries = 18
	batchRounds := rounds / 3
	if batchRounds < 4 {
		batchRounds = 4
	}
	modes := []string{"obs-off", "obs-full", "obs-health"}
	best := map[string]obsCase{}
	pooled := map[string][]float64{}
	for try := 0; try < tries; try++ {
		for _, mode := range modes {
			res, err := measureObs(mode, batchRounds, pages, pageSize, steps, seed)
			if err != nil {
				return fmt.Errorf("%s: %w", mode, err)
			}
			pooled[mode] = append(pooled[mode], res.roundTimes...)
			if b, ok := best[mode]; !ok || res.WallSeconds < b.WallSeconds {
				best[mode] = res
			}
		}
	}
	med := map[string]float64{}
	for _, mode := range modes {
		res := best[mode]
		med[mode] = median(pooled[mode])
		res.MSPerRoundMed = med[mode] * 1e3
		rep.Cases = append(rep.Cases, res)
		fmt.Printf("%-10s %6.1f ms/round median  %8.2f MB alloc/round  %d spans\n",
			res.Mode, res.MSPerRoundMed, float64(res.BytesPerRound)/1e6, res.SpansRecorded)
	}
	if dark := med["obs-off"]; dark > 0 {
		rep.OverheadPercent = (med["obs-full"]/dark - 1) * 100
	}
	if fullMed := med["obs-full"]; fullMed > 0 {
		rep.HealthOverheadPercent = (med["obs-health"]/fullMed - 1) * 100
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("full-telemetry round-time overhead over dark rounds: %+.2f%%\n", rep.OverheadPercent)
	fmt.Printf("health engine marginal overhead over full telemetry: %+.2f%%\n", rep.HealthOverheadPercent)
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// median returns the lower-middle median of vs (0 when empty).
func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	return s[(len(s)-1)/2]
}

// measureObs runs one configuration: a fresh loopback cluster, two warm-up
// rounds, then the timed rounds bracketed by GC-settled MemStats reads. In
// obs-full mode every layer of the telemetry plane is live: tracer with a
// discarding JSONL sink on coordinator and nodes, registry, flight-recorder
// taps on pools and tracer, and a collector pass per round that builds,
// verifies, and attributes the merged round tree.
func measureObs(mode string, rounds, pages, pageSize int, steps uint64, seed int64) (obsCase, error) {
	fail := func(err error) (obsCase, error) { return obsCase{}, err }
	full := mode != "obs-off"
	withHealth := mode == "obs-health"
	layout, err := cluster.Paper12VM()
	if err != nil {
		return fail(err)
	}

	var (
		tr  *obs.Tracer
		reg *obs.Registry
		rec *obs.FlightRecorder
		ev  *health.Evaluator
	)
	// Ring capacity: a batch records a few hundred spans per tracer, and an
	// oversized ring is not free — its zeroed backing array (hundreds of KB
	// per 4k spans) is allocated per batch and feeds background GC work that
	// bleeds into the timed rounds.
	const ringSize = 1 << 12
	var nodeTracers []*obs.Tracer
	if full {
		tr = obs.NewTracer(ringSize)
		tr.SetSink(io.Discard)
		reg = obs.NewRegistry()
		rec = obs.NewFlightRecorder(0)
		rec.SetRegistry(reg)
		tr.SetTap(rec.Span)
	}
	if withHealth {
		// FixedStep and ticked once per round, mirroring how the soak drives
		// the evaluator: the measured cost is the full default rule set
		// (scrape, windowed quantiles, burn ratios, alert export) per round.
		ev = health.New(health.Options{Registry: reg, Recorder: rec, FixedStep: time.Second})
		health.InstallDefaultRules(ev, reg, health.Objectives{})
	}
	nodes := make([]*runtime.Node, layout.Nodes)
	addrs := map[int]string{}
	for i := range nodes {
		// Each node gets its own tracer/registry/recorder, exactly as each
		// dvdcnode process owns its own in a real deployment — sharing one
		// set across all five "processes" would measure in-process lock
		// contention no deployed cluster has.
		var nopts runtime.NodeOptions
		if full {
			ntr := obs.NewTracer(ringSize)
			ntr.SetSink(io.Discard)
			nreg := obs.NewRegistry()
			nrec := obs.NewFlightRecorder(0)
			nrec.SetRegistry(nreg)
			ntr.SetTap(nrec.Span)
			nodeTracers = append(nodeTracers, ntr)
			nopts = runtime.NodeOptions{Tracer: ntr, Registry: nreg, Recorder: nrec}
		}
		n, err := runtime.NewNodeWith("127.0.0.1:0", nopts)
		if err != nil {
			return fail(err)
		}
		defer n.Close()
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	coord, err := runtime.NewCoordinator(layout, addrs, pages, pageSize, seed)
	if err != nil {
		return fail(err)
	}
	defer coord.Close()
	if full {
		coord.SetObserver(tr, reg)
		coord.SetFlightRecorder(rec)
	}
	if err := coord.Setup(); err != nil {
		return fail(err)
	}
	spans := 0
	round := func() error {
		if err := coord.Step(steps); err != nil {
			return err
		}
		if err := coord.Checkpoint(); err != nil {
			return err
		}
		if full {
			// The collector pass the telemetry plane adds per round: gather the
			// round's spans from every process's tracer (the in-process
			// analogue of scraping each /spans endpoint), merge, verify the
			// tree, and attribute the straggler.
			tid := coord.RoundStats().TraceID
			roundSpans := tr.TraceSpans(tid)
			for _, ntr := range nodeTracers {
				roundSpans = append(roundSpans, ntr.TraceSpans(tid)...)
			}
			tree := collect.BuildTree(roundSpans)
			if err := tree.Verify(); err != nil {
				return err
			}
			collect.Attribute(tree).Export(reg)
			spans += len(tree.Spans)
		}
		if withHealth {
			ev.Tick()
		}
		return nil
	}
	for i := 0; i < 2; i++ {
		if err := round(); err != nil {
			return fail(err)
		}
	}

	var before, after goruntime.MemStats
	goruntime.GC()
	goruntime.ReadMemStats(&before)
	var shipped int64
	spans = 0
	roundTimes := make([]float64, 0, rounds)
	start := time.Now()
	for i := 0; i < rounds; i++ {
		rs := time.Now()
		if err := round(); err != nil {
			return fail(err)
		}
		roundTimes = append(roundTimes, time.Since(rs).Seconds())
		shipped += coord.RoundStats().BytesShipped
	}
	wall := time.Since(start)
	goruntime.ReadMemStats(&after)

	return obsCase{
		Mode:          mode,
		Rounds:        rounds,
		WallSeconds:   wall.Seconds(),
		MSPerRound:    wall.Seconds() / float64(rounds) * 1e3,
		BytesShipped:  shipped,
		SpansRecorded: spans,
		AllocBytes:    after.TotalAlloc - before.TotalAlloc,
		BytesPerRound: (after.TotalAlloc - before.TotalAlloc) / uint64(rounds),
		roundTimes:    roundTimes,
	}, nil
}
