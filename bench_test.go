package dvdc

// One benchmark per evaluation artifact (see DESIGN.md's experiment index),
// plus micro-benchmarks of the performance-critical kernels. The experiment
// benchmarks measure the cost of regenerating the artifact; their value is
// that `go test -bench=.` reproduces every figure/table end to end.

import (
	"testing"

	"dvdc/internal/checkpoint"
	"dvdc/internal/core"
	"dvdc/internal/experiments"
	"dvdc/internal/failure"
	"dvdc/internal/parity"
	"dvdc/internal/vm"
)

// benchParams shrinks Monte-Carlo counts so a full -bench=. pass stays
// tractable while still regenerating every artifact.
func benchParams() experiments.Params {
	p := experiments.Default()
	p.SweepPoints = 60
	p.MCRuns = 8
	return p
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	p := benchParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, p)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Text) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkFigure5 regenerates Fig. 5 (E1): the diskless vs disk-full
// interval sweep with optimal-interval search.
func BenchmarkFigure5(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkMonteCarloModel regenerates E2: event simulation vs the
// corrected Section V equations.
func BenchmarkMonteCarloModel(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkArchitectureSurvival regenerates E3: byte-real fault injection
// across the Fig. 1/3/4 architectures.
func BenchmarkArchitectureSurvival(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkParityScaling regenerates E4: parity work distribution vs
// cluster size and the XOR kernel measurement.
func BenchmarkParityScaling(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkMigration regenerates E5: pre-copy downtime sweep and the
// page-hash dedup ablation.
func BenchmarkMigration(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkScalingSweep regenerates E6: overhead at optimal interval vs
// cluster size.
func BenchmarkScalingSweep(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkRemusComparison regenerates E7: DVDC vs Remus.
func BenchmarkRemusComparison(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkDoubleErasure regenerates E8: RDP/RS vs XOR.
func BenchmarkDoubleErasure(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkLatencyOverhead regenerates E9: overhead vs latency.
func BenchmarkLatencyOverhead(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkRecovery regenerates E10: recovery-time breakdown.
func BenchmarkRecovery(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkCheckpointVariants regenerates E11: full vs incremental vs
// forked vs compressed payloads.
func BenchmarkCheckpointVariants(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkEndToEnd regenerates E12: the full-stack simulated 2-day job.
func BenchmarkEndToEnd(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkWeibullSensitivity regenerates E13: the Poisson-assumption
// sensitivity analysis.
func BenchmarkWeibullSensitivity(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkAblations regenerates E14: adaptive intervals + compression.
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkProactiveEvacuation regenerates E15: prediction-driven live
// migration vs reactive rollback.
func BenchmarkProactiveEvacuation(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkUtilization regenerates E16: equal-hardware-budget comparison of
// DVDC against dedicated-checkpoint-node architectures.
func BenchmarkUtilization(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkNoCheckpointBaseline regenerates E17: Eq. 1's restart blowup vs
// the checkpointed Eq. 3.
func BenchmarkNoCheckpointBaseline(b *testing.B) { benchExperiment(b, "E17") }

// BenchmarkToleranceSweep regenerates E18: overhead vs parity tolerance.
func BenchmarkToleranceSweep(b *testing.B) { benchExperiment(b, "E18") }

// BenchmarkDurability regenerates E19: MTTDL and mission loss probability.
func BenchmarkDurability(b *testing.B) { benchExperiment(b, "E19") }

// BenchmarkHardwareSensitivity regenerates E20: Fig. 5 across hardware
// generations.
func BenchmarkHardwareSensitivity(b *testing.B) { benchExperiment(b, "E20") }

// ---- kernel micro-benchmarks ----

// BenchmarkXOR1MiB measures the parity kernel on a checkpoint-sized block.
func BenchmarkXOR1MiB(b *testing.B) {
	dst := make([]byte, 1<<20)
	src := make([]byte, 1<<20)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := parity.XORInto(dst, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRDPEncode measures RDP(7) encoding of six 1 MiB-class blocks.
func BenchmarkRDPEncode(b *testing.B) {
	coder, err := parity.NewRDP(7)
	if err != nil {
		b.Fatal(err)
	}
	n := (1 << 20) / 6 * 6
	data := make([][]byte, 6)
	for i := range data {
		data[i] = make([]byte, n)
		for j := range data[i] {
			data[i][j] = byte(i * j)
		}
	}
	b.SetBytes(int64(6 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := coder.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRSEncode62 measures RS(6,2) encoding.
func BenchmarkRSEncode62(b *testing.B) {
	coder, err := parity.NewRS(6, 2)
	if err != nil {
		b.Fatal(err)
	}
	data := make([][]byte, 6)
	for i := range data {
		data[i] = make([]byte, 1<<20)
		for j := range data[i] {
			data[i][j] = byte(i + j)
		}
	}
	b.SetBytes(6 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coder.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalCapture measures dirty-page capture on a 16 MiB guest
// with a 5% dirty set.
func BenchmarkIncrementalCapture(b *testing.B) {
	m, err := vm.NewMachine("bench", 4096, 4096)
	if err != nil {
		b.Fatal(err)
	}
	checkpoint.CaptureFull(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for p := 0; p < 200; p++ {
			m.TouchPage((i*211+p*37)%4096, uint64(i))
		}
		b.StartTimer()
		c := checkpoint.CaptureIncremental(m)
		if len(c.Pages) == 0 {
			b.Fatal("no pages captured")
		}
	}
}

// BenchmarkCheckpointRound measures one coordinated in-process DVDC round
// on the paper's 12-VM cluster with 4 MiB guests.
func BenchmarkCheckpointRound(b *testing.B) {
	layout, err := PaperLayout()
	if err != nil {
		b.Fatal(err)
	}
	cl, err := NewCluster(layout, 1024, 4096)
	if err != nil {
		b.Fatal(err)
	}
	workloads := map[string]*vm.Uniform{}
	for i, name := range cl.VMNames() {
		workloads[name] = vm.NewUniform(int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for _, name := range cl.VMNames() {
			m, _ := cl.Machine(name)
			vm.Run(workloads[name], m, 2000)
		}
		b.StartTimer()
		if err := cl.CheckpointRound(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventEngine measures the discrete-event engine simulating a
// 2-day job with ~1200 checkpoints and Poisson failures.
func BenchmarkEventEngine(b *testing.B) {
	scheme, sched := benchScheme(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.Config{
			JobSeconds: 2 * 24 * 3600, Interval: 140, DetectSec: 1,
			Schedule: sched, Scheme: scheme,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Checkpoints == 0 {
			b.Fatal("no checkpoints")
		}
	}
}

func benchScheme(b *testing.B) (core.Scheme, *failure.NodeSchedule) {
	b.Helper()
	layout, err := PaperLayout()
	if err != nil {
		b.Fatal(err)
	}
	plat, err := DefaultPlatform(layout.Nodes)
	if err != nil {
		b.Fatal(err)
	}
	spec := vm.Spec{
		Name:       "bench",
		ImageBytes: 1 << 30,
		Dirty:      vm.SaturatingDirty{WriteRate: 4 << 20, WSSBytes: 32 << 20},
	}
	scheme, err := NewDVDCScheme(plat, layout, spec)
	if err != nil {
		b.Fatal(err)
	}
	sched, err := failure.NewPoissonNodes(layout.Nodes, 4*3*3600, 99)
	if err != nil {
		b.Fatal(err)
	}
	return scheme, sched
}

// BenchmarkCheckpointRoundConcurrent measures the per-group-parallel round
// on the same configuration as BenchmarkCheckpointRound: the speedup is the
// in-process analogue of Sec. IV-B's distributed parity argument.
func BenchmarkCheckpointRoundConcurrent(b *testing.B) {
	layout, err := PaperLayout()
	if err != nil {
		b.Fatal(err)
	}
	cl, err := NewCluster(layout, 1024, 4096)
	if err != nil {
		b.Fatal(err)
	}
	workloads := map[string]*vm.Uniform{}
	for i, name := range cl.VMNames() {
		workloads[name] = vm.NewUniform(int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for _, name := range cl.VMNames() {
			m, _ := cl.Machine(name)
			vm.Run(workloads[name], m, 2000)
		}
		b.StartTimer()
		if err := cl.CheckpointRoundConcurrent(); err != nil {
			b.Fatal(err)
		}
	}
}
