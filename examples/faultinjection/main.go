// Faultinjection: a long-horizon survival demo. A DVDC cluster with spare
// nodes endures a storm of sequential node failures: after each failure the
// cluster recovers, the failed node is repaired and rejoins, and execution
// continues. State integrity is verified after every cycle.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"dvdc"
	"dvdc/internal/vm"
)

func main() {
	// 8 nodes, groups of 4 + parity: three spare nodes per group, so
	// recovery preserves orthogonality and the storm can run indefinitely.
	layoutS, err := dvdc.NewDVDCLayoutGroups(8, 1, 1, 4)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := dvdc.NewCluster(layoutS, 128, 4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d nodes, %d VMs, groups of %d\n",
		layoutS.Nodes, len(layoutS.VMs), len(layoutS.Groups[0].Members))

	rng := rand.New(rand.NewSource(7))
	survived := 0
	for cycle := 1; cycle <= 12; cycle++ {
		// Work + checkpoint.
		for i, name := range cl.VMNames() {
			m, err := cl.Machine(name)
			if err != nil {
				log.Fatal(err)
			}
			w := vm.NewUniform(int64(cycle*100 + i))
			vm.Run(w, m, 500)
		}
		if err := cl.CheckpointRound(); err != nil {
			log.Fatal(err)
		}
		committed := map[string][]byte{}
		for _, name := range cl.VMNames() {
			m, _ := cl.Machine(name)
			committed[name] = m.Image()
		}

		// Random node failure + recovery + repair.
		victim := rng.Intn(layoutS.Nodes)
		rep, err := cl.FailNode(victim)
		if err != nil {
			fmt.Printf("cycle %2d: node %d unrecoverable (%v) — stopping storm\n", cycle, victim, err)
			break
		}
		bad := 0
		for _, name := range cl.VMNames() {
			m, _ := cl.Machine(name)
			if !bytes.Equal(m.Image(), committed[name]) {
				bad++
			}
		}
		if err := cl.VerifyParity(); err != nil {
			log.Fatalf("cycle %d: parity corrupt: %v", cycle, err)
		}
		if err := cl.RepairNode(victim); err != nil {
			log.Fatal(err)
		}
		status := "orthogonal"
		if rep.Degraded {
			status = "degraded"
		}
		fmt.Printf("cycle %2d: node %d died, %d VMs rebuilt (%s), %d/%d states verified\n",
			cycle, victim, len(rep.LostVMs), status, len(committed)-bad, len(committed))
		survived++
	}
	s := cl.Stats()
	fmt.Printf("\nsurvived %d failure cycles: %d reconstructions, %d parity rebuilds, %d rollbacks, %.1f MiB deltas\n",
		survived, s.Reconstructions, s.ParityRebuilds, s.Rollbacks, float64(s.DeltaBytes)/(1<<20))

	paperStorm()
}

// paperStorm runs the same storm on the paper's tight 4-node layout, where
// every recovery is necessarily degraded (no spare node) — but repairing the
// node and REBALANCING (live-migrating the co-located VMs back) restores
// full protection each cycle, so the storm never accumulates risk.
func paperStorm() {
	fmt.Println("\n--- paper 4-node layout with repair + rebalance ---")
	layout, err := dvdc.PaperLayout()
	if err != nil {
		log.Fatal(err)
	}
	cl, err := dvdc.NewCluster(layout, 128, 4096)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for cycle := 1; cycle <= 8; cycle++ {
		for i, name := range cl.VMNames() {
			m, err := cl.Machine(name)
			if err != nil {
				log.Fatal(err)
			}
			vm.Run(vm.NewUniform(int64(cycle*1000+i)), m, 400)
		}
		if err := cl.CheckpointRound(); err != nil {
			log.Fatal(err)
		}
		victim := rng.Intn(4)
		rep, err := cl.FailNode(victim)
		if err != nil {
			log.Fatalf("cycle %d: %v", cycle, err)
		}
		if err := cl.RepairNode(victim); err != nil {
			log.Fatal(err)
		}
		rb, err := cl.Rebalance(nil)
		if err != nil {
			log.Fatalf("cycle %d rebalance: %v", cycle, err)
		}
		if err := cl.Layout().Validate(); err != nil {
			log.Fatalf("cycle %d: orthogonality not restored: %v", cycle, err)
		}
		fmt.Printf("cycle %d: node %d died (degraded=%v), repaired, %d rebalance moves, orthogonality restored\n",
			cycle, victim, rep.Degraded, len(rb.Steps))
	}
	fmt.Println("the tight layout survives an open-ended storm once rebalance closes each cycle")
}
