// Quickstart: build the paper's 4-node / 12-VM DVDC cluster in-process,
// run workloads, take coordinated diskless checkpoints, kill a physical
// node, and watch the lost VMs come back bit-exact from parity.
package main

import (
	"bytes"
	"fmt"
	"log"

	"dvdc"
	"dvdc/internal/vm"
)

func main() {
	// The exact Fig. 4 configuration: 4 nodes, 12 VMs in 4 orthogonal RAID
	// groups of 3, parity rotated across all nodes.
	layout, err := dvdc.PaperLayout()
	if err != nil {
		log.Fatal(err)
	}
	cl, err := dvdc.NewCluster(layout, 256, 4096) // 1 MiB VMs
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d nodes, %d VMs, %d RAID groups (%s)\n",
		layout.Nodes, len(layout.VMs), len(layout.Groups), layout.Arch)

	// Run a Zipf-skewed guest workload on every VM and checkpoint twice.
	for round := 1; round <= 2; round++ {
		for i, name := range cl.VMNames() {
			m, err := cl.Machine(name)
			if err != nil {
				log.Fatal(err)
			}
			w, err := vm.NewZipf(m.NumPages(), 1.3, int64(i))
			if err != nil {
				log.Fatal(err)
			}
			vm.Run(w, m, 2000)
		}
		if err := cl.CheckpointRound(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpoint round %d committed (delta bytes so far: %d)\n",
			round, cl.Stats().DeltaBytes)
	}

	// Remember the committed state of every VM.
	committed := map[string][]byte{}
	for _, name := range cl.VMNames() {
		m, _ := cl.Machine(name)
		committed[name] = m.Image()
	}

	// Node 2 bursts into flames: its three VMs and one parity block vanish.
	report, err := cl.FailNode(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 2 failed: lost VMs %v (recovery degraded=%v)\n",
		report.LostVMs, report.Degraded)
	for _, s := range report.Plan.Steps {
		fmt.Printf("  %-14s group %d -> node %d %s\n", s.Kind, s.Group, s.TargetNode, s.VM)
	}

	// Every VM — reconstructed or rolled back — must hold the committed state.
	ok := 0
	for _, name := range cl.VMNames() {
		m, _ := cl.Machine(name)
		if bytes.Equal(m.Image(), committed[name]) {
			ok++
		} else {
			fmt.Printf("  MISMATCH: %s\n", name)
		}
	}
	fmt.Printf("verified %d/%d VMs at the committed checkpoint; parity: ", ok, len(committed))
	if err := cl.VerifyParity(); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("consistent")
	fmt.Printf("stats: %+v\n", cl.Stats())
}
