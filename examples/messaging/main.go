// Messaging: the consistency half of the paper's Sec. IV-A — "coordinate a
// consistent distributed checkpoint". A producer VM streams sequenced
// messages to a consumer VM over FIFO channels; the coordinated checkpoint
// drains in-flight messages before capture, and recovery discards the
// post-checkpoint in-flight ones alongside the rolled-back sender state.
// The consumer asserts gap-free, duplicate-free delivery through checkpoint,
// failure, rollback, and reconstruction.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"dvdc"
	"dvdc/internal/comm"
	"dvdc/internal/vm"
)

func main() {
	layout, err := dvdc.NewDVDCLayoutGroups(6, 1, 1, 3)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := dvdc.NewCluster(layout, 16, 4096)
	if err != nil {
		log.Fatal(err)
	}
	net := comm.NewNetwork()
	// Deliver: verify sequence continuity and record it in the consumer.
	deliver := func(dst *vm.Machine, m comm.Message) error {
		seq := binary.LittleEndian.Uint64(m.Payload)
		var bad error
		dst.MutatePage(0, func(p []byte) {
			last := binary.LittleEndian.Uint64(p[:8])
			if seq != last+1 {
				bad = fmt.Errorf("GAP/DUP: consumer got %d after %d", seq, last)
				return
			}
			binary.LittleEndian.PutUint64(p[:8], seq)
		})
		return bad
	}
	if err := cl.AttachNetwork(net, deliver); err != nil {
		log.Fatal(err)
	}

	names := cl.VMNames()
	producer, consumer := names[0], names[4]
	send := func(k int) {
		m, _ := cl.Machine(producer)
		for i := 0; i < k; i++ {
			var next uint64
			m.MutatePage(0, func(p []byte) {
				next = binary.LittleEndian.Uint64(p[:8]) + 1
				binary.LittleEndian.PutUint64(p[:8], next)
			})
			payload := make([]byte, 8)
			binary.LittleEndian.PutUint64(payload, next)
			if err := net.Send(producer, consumer, payload); err != nil {
				log.Fatal(err)
			}
		}
	}
	counter := func(name string) uint64 {
		m, _ := cl.Machine(name)
		return binary.LittleEndian.Uint64(m.Page(0)[:8])
	}

	send(100)
	if err := cl.CheckpointRound(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after checkpoint: producer sent %d, consumer received %d, in flight %d\n",
		counter(producer), counter(consumer), net.InFlight())

	send(40) // uncommitted sends, left in flight
	v, _ := cl.Layout().VM(producer)
	fmt.Printf("sent 40 more (in flight %d); killing node %d (hosts the producer)...\n",
		net.InFlight(), v.Node)
	if _, err := cl.FailNode(v.Node); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after recovery: producer counter %d, consumer counter %d, in flight %d\n",
		counter(producer), counter(consumer), net.InFlight())

	send(25)
	if err := cl.CheckpointRound(); err != nil {
		log.Fatal(err) // a gap or duplicate would surface here
	}
	fmt.Printf("resumed cleanly: producer %d == consumer %d, no gaps, no duplicates\n",
		counter(producer), counter(consumer))
}
