// Figure5: regenerate the paper's only quantitative figure from the public
// API — the expected-completion-time ratio of diskless (DVDC) vs disk-full
// checkpointing as the checkpoint interval sweeps, minima marked.
package main

import (
	"fmt"
	"log"

	"dvdc"
)

func main() {
	p := dvdc.ExperimentParams() // MTBF 3 h, T = 2 days, 4 nodes / 12 VMs
	p.SweepPoints = 90
	res, err := dvdc.Experiment("E1", p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Title)
	fmt.Println()
	fmt.Println(res.Text)

	// The same sweep at a bleaker MTBF (the paper's motivation: future
	// machines fail every few minutes).
	p.MTBF = 20 * 60
	res, err = dvdc.Experiment("E1", p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Same configuration at MTBF = 20 minutes ===")
	fmt.Println()
	fmt.Println(res.Text)
}
