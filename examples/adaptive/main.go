// Adaptive: the adaptive checkpoint-interval extension the paper cites
// (Yi et al.). The engine re-tunes the interval online from the overhead of
// the checkpoint it just paid (Young/Daly re-derived per window) and is
// compared against fixed intervals — including badly mistuned ones — on the
// same failure schedules.
package main

import (
	"fmt"
	"log"

	"dvdc"
	"dvdc/internal/core"
	"dvdc/internal/vm"
)

func main() {
	layout, err := dvdc.PaperLayout()
	if err != nil {
		log.Fatal(err)
	}
	plat, err := dvdc.DefaultPlatform(layout.Nodes)
	if err != nil {
		log.Fatal(err)
	}
	spec := vm.Spec{
		Name:       "guest",
		ImageBytes: 1 << 30,
		Dirty:      vm.SaturatingDirty{WriteRate: 4 << 20, WSSBytes: 32 << 20},
	}
	scheme, err := dvdc.NewDVDCScheme(plat, layout, spec)
	if err != nil {
		log.Fatal(err)
	}

	const (
		mtbf = 3 * 3600.0
		job  = 2 * 24 * 3600.0
		runs = 40
	)
	type policy struct {
		name     string
		interval float64
		pol      core.IntervalPolicy
	}
	policies := []policy{
		{"fixed 10 s (too eager)", 10, nil},
		{"fixed 2 h (too lazy)", 2 * 3600, nil},
		{"fixed 140 s (hand-tuned)", 140, nil},
		{"adaptive Young/Daly", 600, core.YoungDalyPolicy(mtbf, 5, job/4)},
	}
	fmt.Printf("%-28s %-12s %-12s %-10s\n", "policy", "E[T]/T", "checkpoints", "lost work (s)")
	for _, p := range policies {
		var ratio, lost float64
		var ckpts int
		for r := 0; r < runs; r++ {
			sched, err := dvdc.NewPoissonFailures(layout.Nodes, mtbf*float64(layout.Nodes), 1000+int64(r))
			if err != nil {
				log.Fatal(err)
			}
			res, err := dvdc.Simulate(core.Config{
				JobSeconds: job, Interval: p.interval, DetectSec: 1,
				Schedule: sched, Scheme: scheme, Policy: p.pol,
			})
			if err != nil {
				log.Fatal(err)
			}
			ratio += res.Ratio
			lost += res.LostWork
			ckpts = res.Checkpoints
		}
		fmt.Printf("%-28s %-12.4f %-12d %-10.0f\n", p.name, ratio/runs, ckpts, lost/runs)
	}
	fmt.Println("\nThe adaptive policy converges to the hand-tuned optimum without knowing the")
	fmt.Println("platform's overhead curve in advance — the benefit Yi et al. argue for when")
	fmt.Println("checkpoint cost varies with the dirty set.")
}
