// Doubletolerance: the multi-failure extension the paper motivates through
// Wang et al.'s double-erasure checkpointing. A 7-node cluster protects each
// RAID group with TWO parity blocks (GF(256) Reed-Solomon, where one block
// degenerates to the paper's XOR), so two physical nodes can die at the
// same instant — here, over real TCP — and every lost VM still comes back
// bit-exact.
package main

import (
	"fmt"
	"log"

	"dvdc"
	"dvdc/internal/runtime"
)

func main() {
	const nodes = 7
	daemons := make([]*runtime.Node, nodes)
	addrs := map[int]string{}
	for i := range daemons {
		n, err := dvdc.NewNode("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		daemons[i] = n
		addrs[i] = n.Addr()
	}
	defer func() {
		for _, d := range daemons {
			d.Close()
		}
	}()

	// Groups of 3 members + 2 parity blocks: tolerance 2.
	layout, err := dvdc.NewDVDCLayoutGroups(nodes, 1, 2, 3)
	if err != nil {
		log.Fatal(err)
	}
	coord, err := dvdc.NewCoordinator(layout, addrs, 64, 4096, 11)
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()
	if err := coord.Setup(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d nodes, %d VMs, %d groups, tolerance %d (RS double parity)\n",
		nodes, len(layout.VMs), len(layout.Groups), layout.Tolerance)

	for round := 1; round <= 3; round++ {
		if err := coord.Step(120); err != nil {
			log.Fatal(err)
		}
		if err := coord.Checkpoint(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d committed (epoch %d)\n", round, coord.Epoch())
	}
	committed, err := coord.Checksums()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nkilling nodes 2 and 5 simultaneously...")
	daemons[2].Close()
	daemons[5].Close()
	plan, err := coord.RecoverNodes(2, 5)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range plan.Steps {
		fmt.Printf("  %-14s group %d -> node %d %s\n", s.Kind, s.Group, s.TargetNode, s.VM)
	}
	after, err := coord.Checksums()
	if err != nil {
		log.Fatal(err)
	}
	ok := 0
	for vmName, want := range committed {
		if after[vmName] == want {
			ok++
		}
	}
	fmt.Printf("double-failure recovery: %d/%d VM states verified bit-exact\n", ok, len(committed))

	if err := coord.Step(60); err != nil {
		log.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster still checkpointing on 5 survivors (epoch %d)\n", coord.Epoch())
}
