// Distributed: the DVDC protocol over real TCP sockets. Six node daemons
// start on loopback, a coordinator assigns the layout, drives workload and
// two-phase checkpoint rounds (deltas really cross sockets to parity
// peers), then one daemon is killed and the coordinator reconstructs its
// VMs from survivor images plus parity on the remaining nodes.
package main

import (
	"fmt"
	"log"

	"dvdc"
	"dvdc/internal/runtime"
)

func main() {
	// Spin up six node daemons (in one process here; cmd/dvdcnode runs the
	// same daemon standalone).
	const nodes = 6
	daemons := make([]*runtime.Node, nodes)
	addrs := map[int]string{}
	for i := range daemons {
		n, err := dvdc.NewNode("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		daemons[i] = n
		addrs[i] = n.Addr()
		fmt.Printf("node %d listening on %s\n", i, n.Addr())
	}
	defer func() {
		for _, d := range daemons {
			d.Close()
		}
	}()

	// Groups of 3 + parity on 6 nodes: spare nodes keep recovery orthogonal.
	layout, err := dvdc.NewDVDCLayoutGroups(nodes, 1, 1, 3)
	if err != nil {
		log.Fatal(err)
	}
	coord, err := dvdc.NewCoordinator(layout, addrs, 64, 4096, 42)
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()
	if err := coord.Setup(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("configured: %d VMs in %d groups across %d nodes\n\n",
		len(layout.VMs), len(layout.Groups), nodes)

	for round := 1; round <= 3; round++ {
		if err := coord.Step(150); err != nil {
			log.Fatal(err)
		}
		if err := coord.Checkpoint(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d: two-phase checkpoint committed (epoch %d)\n", round, coord.Epoch())
	}
	committed, err := coord.Checksums()
	if err != nil {
		log.Fatal(err)
	}

	// Kill node 1 for real: its TCP server goes away mid-cluster.
	fmt.Println("\nkilling node 1...")
	daemons[1].Close()
	plan, err := coord.RecoverNode(1)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range plan.Steps {
		fmt.Printf("  %-14s group %d -> node %d %s\n", s.Kind, s.Group, s.TargetNode, s.VM)
	}
	after, err := coord.Checksums()
	if err != nil {
		log.Fatal(err)
	}
	ok := 0
	for vmName, want := range committed {
		if after[vmName] == want {
			ok++
		}
	}
	fmt.Printf("recovered: %d/%d VM states verified bit-exact across the wire\n", ok, len(committed))

	// The cluster keeps checkpointing on the surviving five nodes.
	if err := coord.Step(100); err != nil {
		log.Fatal(err)
	}
	if err := coord.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-recovery checkpoint committed (epoch %d)\n", coord.Epoch())
}
