# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race cover bench datapath obs-bench experiments figures fuzz soak obs-demo clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/runtime/ ./internal/transport/ ./internal/chaos/ ./internal/core/ ./internal/sim/ ./internal/service/ ./internal/parity/ ./internal/wire/

cover:
	$(GO) test -coverprofile=cover.out ./internal/...
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem ./...

# Monolithic-vs-chunked data-path comparison on a live loopback cluster;
# regenerates BENCH_datapath.json.
datapath:
	$(GO) run ./cmd/dvdcbench -datapath

# Telemetry-plane overhead comparison (obs off vs fully lit) on a live
# loopback cluster; regenerates BENCH_obs.json. The acceptance bar is <= 5%
# round-time overhead.
obs-bench:
	$(GO) run ./cmd/dvdcbench -obs

# Regenerate every paper artifact (tables + ASCII charts) on stdout.
experiments:
	$(GO) run ./cmd/dvdcbench -exp all

# Same, but also write .txt/.csv/.png files under fig/.
figures:
	$(GO) run ./cmd/dvdcbench -exp all -out fig

# Invariant-checked chaos soak on a live loopback cluster (seeded; any
# failure is replayed exactly with SOAK_SEED=<printed seed>).
SOAK_SEED ?= 424242
soak:
	$(GO) run ./cmd/dvdcsoak -seed $(SOAK_SEED) -rounds 20
	$(GO) run ./cmd/dvdcsoak -seed $(SOAK_SEED) -nodes 8 -rounds 10
	$(GO) run ./cmd/dvdcsoak -seed $(SOAK_SEED) -rounds 10 -chunk-faults 2 -chunk-size 256

# Observability demo: soak with a JSONL trace sink, render one round's
# timeline, and dump the Prometheus exposition of a live node.
obs-demo:
	$(GO) run ./cmd/dvdcsoak -seed $(SOAK_SEED) -rounds 4 -trace-jsonl /tmp/dvdc-trace.jsonl
	$(GO) run ./cmd/dvdcctl trace -in /tmp/dvdc-trace.jsonl
	$(GO) run ./cmd/dvdcctl trace -in /tmp/dvdc-trace.jsonl -epoch 2

# Short fuzzing passes over the codecs, the chunk reassembly path, the
# scatter-gather frame encoder, the GF(256) slice kernels, and the service
# journal's recovery path.
fuzz:
	$(GO) test ./internal/wire/ -fuzz FuzzDecode -fuzztime 30s
	$(GO) test ./internal/wire/ -fuzz FuzzChunkReassembly -fuzztime 30s
	$(GO) test ./internal/wire/ -fuzz FuzzScatterGatherFrames -fuzztime 30s
	$(GO) test ./internal/parity/ -fuzz FuzzGfSliceKernels -fuzztime 30s
	$(GO) test ./internal/checkpoint/ -fuzz FuzzDecode -fuzztime 30s
	$(GO) test ./internal/runtime/ -fuzz FuzzDecodeDelta -fuzztime 30s
	$(GO) test ./internal/service/ -fuzz FuzzJournalReplay -fuzztime 30s

clean:
	rm -rf fig cover.out test_output.txt bench_output.txt
