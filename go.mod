module dvdc

go 1.22
