package dvdc

// Smoke tests for the command-line binaries: build them with the local
// toolchain, run a real multi-process DVDC session on loopback, kill a
// daemon, and verify the controller recovers. Skipped with -short.

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildCmd compiles one of the cmd/ binaries into dir.
func buildCmd(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func TestCmdSmokeDistributedSession(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke test")
	}
	dir := t.TempDir()
	nodeBin := buildCmd(t, dir, "dvdcnode")
	ctlBin := buildCmd(t, dir, "dvdcctl")

	// Start four daemons on ephemeral ports and read their addresses.
	var addrs []string
	var procs []*exec.Cmd
	for i := 0; i < 4; i++ {
		cmd := exec.Command(nodeBin, "-listen", "127.0.0.1:0")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs = append(procs, cmd)
		sc := bufio.NewScanner(stdout)
		addrCh := make(chan string, 1)
		go func() {
			for sc.Scan() {
				line := sc.Text()
				if strings.Contains(line, "listening on ") {
					addrCh <- strings.TrimSpace(strings.SplitAfter(line, "listening on ")[1])
					return
				}
			}
			addrCh <- ""
		}()
		select {
		case a := <-addrCh:
			if a == "" {
				t.Fatalf("daemon %d printed no address", i)
			}
			addrs = append(addrs, a)
		case <-time.After(10 * time.Second):
			t.Fatalf("daemon %d did not report its address", i)
		}
	}
	t.Cleanup(func() {
		for _, p := range procs {
			p.Process.Kill()
			p.Wait()
		}
	})

	// Run three checkpointed rounds, then have the controller treat node 2
	// as dead and recover around it (the runtime's own tests cover real TCP
	// death; here the whole multi-process pipeline is what's under test).
	ctl := exec.Command(ctlBin,
		"-nodes", strings.Join(addrs, ","),
		"-rounds", "3", "-steps", "100", "-kill", "2", "-pages", "32")
	out, err := ctl.CombinedOutput()
	text := string(out)
	if err != nil {
		t.Fatalf("dvdcctl: %v\n%s", err, text)
	}
	for _, want := range []string{
		"configured 4 nodes, 12 VMs, 4 groups",
		"round 3: epoch 3: prepare ",
		"B shipped",
		"phase timings:",
		"recovery complete: 12/12 VM states verified",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("dvdcctl output missing %q:\n%s", want, text)
		}
	}
}

// scanForPrefix reads lines from r until one contains marker and sends the
// text after the marker (or "" at EOF).
func scanForPrefix(r *bufio.Scanner, marker string) chan string {
	ch := make(chan string, 1)
	go func() {
		for r.Scan() {
			if line := r.Text(); strings.Contains(line, marker) {
				ch <- strings.TrimSpace(strings.SplitAfter(line, marker)[1])
				return
			}
		}
		ch <- ""
	}()
	return ch
}

func waitLine(t *testing.T, ch chan string, what string) string {
	t.Helper()
	select {
	case s := <-ch:
		if s == "" {
			t.Fatalf("%s: stream ended before the expected line", what)
		}
		return s
	case <-time.After(15 * time.Second):
		t.Fatalf("%s: timed out", what)
	}
	return ""
}

// TestCmdSmokeTelemetry runs the full telemetry plane across processes: three
// daemons and a paced controller session, each with -obs-addr :0 (the bound
// address is discovered from the canonical "obs listening on" stderr line),
// then `dvdcctl top -once` scraping all four endpoints must merge a
// single-rooted, closed round trace and exit zero.
func TestCmdSmokeTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke test")
	}
	dir := t.TempDir()
	nodeBin := buildCmd(t, dir, "dvdcnode")
	ctlBin := buildCmd(t, dir, "dvdcctl")

	var nodeAddrs, obsAddrs []string
	var procs []*exec.Cmd
	for i := 0; i < 3; i++ {
		cmd := exec.Command(nodeBin, "-listen", "127.0.0.1:0", "-obs-addr", "127.0.0.1:0")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs = append(procs, cmd)
		addrCh := scanForPrefix(bufio.NewScanner(stdout), "listening on ")
		obsCh := scanForPrefix(bufio.NewScanner(stderr), "obs listening on ")
		nodeAddrs = append(nodeAddrs, waitLine(t, addrCh, fmt.Sprintf("daemon %d address", i)))
		obsAddrs = append(obsAddrs, waitLine(t, obsCh, fmt.Sprintf("daemon %d obs address", i)))
	}
	t.Cleanup(func() {
		for _, p := range procs {
			p.Process.Kill()
			p.Wait()
		}
	})

	// A paced session stays alive while top scrapes it.
	pmDir := filepath.Join(dir, "postmortems")
	ctl := exec.Command(ctlBin,
		"-nodes", strings.Join(nodeAddrs, ","),
		"-rounds", "500", "-steps", "50", "-pages", "32",
		"-round-interval", "200ms",
		"-obs-addr", "127.0.0.1:0",
		"-postmortem-dir", pmDir)
	ctlOut, err := ctl.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	ctlErr, err := ctl.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctl.Process.Kill()
		ctl.Wait()
	})
	coordObs := waitLine(t, scanForPrefix(bufio.NewScanner(ctlErr), "obs listening on "), "controller obs address")
	obsAddrs = append(obsAddrs, coordObs)
	// Two closed rounds guarantee the scrape sees a finished round tree.
	waitLine(t, scanForPrefix(bufio.NewScanner(ctlOut), "round 2:"), "second round")

	top := exec.Command(ctlBin, "top", "-scrape", strings.Join(obsAddrs, ","), "-once")
	out, err := top.CombinedOutput()
	text := string(out)
	if err != nil {
		t.Fatalf("dvdcctl top -once: %v\n%s", err, text)
	}
	for _, want := range []string{
		"dvdc cluster telemetry — 4 source(s)",
		"round trace ",
		"[CLOSED]",
		"LANE",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("top output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "DOWN") {
		t.Errorf("top reports a down source:\n%s", text)
	}

	// No failure happened, so the postmortem dir must hold no bundles and the
	// renderer must say so.
	pm := exec.Command(ctlBin, "postmortem", "-dir", pmDir)
	if out, err := pm.CombinedOutput(); err == nil || !strings.Contains(string(out), "no postmortem bundles") {
		t.Errorf("postmortem on a clean session = (%v)\n%s", err, out)
	}
}

func TestCmdSmokeSimAndBench(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke test")
	}
	dir := t.TempDir()
	simBin := buildCmd(t, dir, "dvdcsim")
	benchBin := buildCmd(t, dir, "dvdcbench")

	out, err := exec.Command(simBin, "-scheme", "dvdc", "-job", "20000", "-interval", "200").CombinedOutput()
	if err != nil {
		t.Fatalf("dvdcsim: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "completion") {
		t.Errorf("dvdcsim output: %s", out)
	}

	out, err = exec.Command(benchBin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("dvdcbench -list: %v\n%s", err, out)
	}
	for i := 1; i <= 20; i++ {
		if !strings.Contains(string(out), fmt.Sprintf("E%d ", i)) {
			t.Errorf("dvdcbench -list missing E%d:\n%s", i, out)
		}
	}

	out, err = exec.Command(benchBin, "-exp", "E3").CombinedOutput()
	if err != nil {
		t.Fatalf("dvdcbench -exp E3: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "single-failure survival") {
		t.Errorf("E3 output: %s", out)
	}

	// -out writes the artifact files, including a PNG for figures.
	artDir := filepath.Join(dir, "fig")
	if out, err := exec.Command(benchBin, "-exp", "E1", "-points", "40", "-out", artDir).CombinedOutput(); err != nil {
		t.Fatalf("dvdcbench -out: %v\n%s", err, out)
	}
	for _, f := range []string{"e1.txt", "e1.csv", "e1.png"} {
		if _, err := os.Stat(filepath.Join(artDir, f)); err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
		}
	}
}
